// Package dramhit implements the DRAMHiT hash table (Narayanan et al.,
// EuroSys 2023): a lock-free open-addressing table with linear probing whose
// interface is asynchronous — callers submit batches of requests and collect
// batches of possibly out-of-order responses — and whose execution never
// touches unprefetched memory.
//
// Each accessor goroutine owns a Handle with a bounded FIFO queue of pending
// requests (the prefetch queue, Algorithm 1 of the paper). Submitting a
// request hashes the key, computes the home slot, issues a prefetch for its
// cache line and enqueues. Once PrefetchWindow requests have accumulated,
// the oldest request's line is guaranteed to be cache-resident, so the
// handle drains the queue head: it probes only within the already-prefetched
// line, and a probe that must cross into the next line issues a new prefetch
// and re-enqueues the request (a reprobe). Requests therefore complete out
// of order; every response carries the caller's opaque request ID.
//
// In Go a "prefetch" is an ordinary load of the line's first word: issuing a
// window of independent loads back-to-back lets the CPU overlap the misses
// (memory-level parallelism), which is the same mechanism the paper's
// prefetcht0-based engine exploits. The cycle-level reproduction of the
// paper's numbers lives in internal/simtable, where prefetch cost is modeled
// explicitly.
package dramhit

import (
	"strconv"
	"time"

	"dramhit/internal/governor"
	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"

	"sync/atomic"
)

// DefaultPrefetchWindow is the number of in-flight requests a handle
// accumulates before it starts draining; the paper uses a window sized so
// that a DRAM-latency miss is fully covered by the submission of the
// following requests.
const DefaultPrefetchWindow = 16

// Config parameterizes a Table.
type Config struct {
	// Slots is the capacity of the table (number of 16-byte slots).
	Slots uint64
	// PrefetchWindow is the pipeline depth per handle; 0 selects
	// DefaultPrefetchWindow. A window of 1 degenerates to synchronous
	// operation (used by the batching ablation, Figure 7).
	PrefetchWindow int
	// Hash overrides the hash function; nil selects hashfn.City64.
	// hashfn.CRC64 matches the paper's CRC32 configuration.
	Hash func(uint64) uint64
	// ProbeKernel selects how the drain probes a resident cache line. The
	// zero value (table.KernelSWAR) snapshots the whole line and runs the
	// lane-parallel branch-free kernel of internal/simd; table.KernelScalar
	// keeps the slot-by-slot loop for ablation and A/B benchmarks.
	ProbeKernel table.ProbeKernel
	// ProbeFilter selects whether probes consult the packed tag-fingerprint
	// sidecar before loading a line's key lanes. The zero value
	// (table.FilterTags) allocates the sidecar and gates every SWAR drain on
	// it; table.FilterNone keeps the unfiltered probe as the A/B baseline.
	// The filter is line-granular and accelerates only KernelSWAR; a
	// KernelScalar table is forced to FilterNone.
	ProbeFilter table.ProbeFilter
	// Combining selects whether Submit merges a request whose key already
	// has a pending request in the handle's prefetch queue instead of
	// enqueueing it. The zero value (table.CombineOn) coalesces duplicate
	// upserts, piggybacks duplicate Gets on one probe, and forwards
	// Get-after-Put/Upsert from the in-flight value; table.CombineOff keeps
	// the one-request-one-probe pipeline as the A/B baseline. Combining is
	// kernel- and filter-independent: the merge decision reads only the
	// handle's own ring, never the table.
	Combining table.Combining
	// Observe, when non-nil, attaches the table to the observability
	// registry: each handle registers a padded counter shard (published at
	// Submit/Flush boundaries, so the hot path stays free of shared-line
	// atomics) and samples request lifecycles into the registry's trace
	// ring. Nil — the default — is bit-identical to an uninstrumented table
	// and adds no allocation or branch beyond a nil check.
	Observe *obs.Registry
	// Layout selects the physical slot layout. The zero value
	// (table.LayoutFlat) is the interleaved uint64 array with the optional
	// tag sidecar, bit-identical to prior configurations.
	// table.LayoutBucket stores the index as one-line buckets with in-cell
	// metadata over a log-structured KV arena: probes touch a single cache
	// line with no sidecar traffic, reserved keys need no side slots, and
	// the handle grows the byte-string API (GetBytes/PutBytes/UpsertBytes/
	// DeleteBytes). A bucket table resizes itself and ignores Config.Hash
	// and ProbeFilter (the hash must match the engine's byte hash; there is
	// no sidecar to filter).
	Layout table.Layout
	// Governor selects the adaptive pipeline controller. The zero value
	// (table.GovernorOff) runs the statically configured pipeline,
	// bit-identical to a governorless build. table.GovernorAuto attaches the
	// epoch-based hill-climber of internal/governor: handles feed it their
	// own counters and re-read its packed decision word at batch boundaries,
	// adapting window depth, combining, the probe filter, and the
	// direct/pipelined mode to the live workload. table.GovernorDirect pins
	// the degraded direct mode: Submit bypasses the ring and executes a
	// folklore-style synchronous probe inline (one branch on a cached mode
	// word, zero allocation). The governor can only toggle features the
	// table was constructed with — it never grows a tag sidecar or a
	// combining mirror at runtime.
	Governor table.GovernorMode
}

// Table is the shared state of a DRAMHiT hash table. Create per-goroutine
// Handles with NewHandle; the Table itself holds no per-caller state and all
// slot accesses are safe for concurrent use. Values equal to
// slotarr.InFlightValue are reserved.
type Table struct {
	arr     *slotarr.Array
	bkt     *slotarr.BucketTable // non-nil iff Layout == table.LayoutBucket
	side    slotarr.SidePair
	hash    func(uint64) uint64
	size    uint64
	window  int
	kernel  table.ProbeKernel
	filter  table.ProbeFilter
	combine table.Combining
	used    atomic.Int64
	live    atomic.Int64
	obsReg  *obs.Registry
	nhandle atomic.Int64 // handle counter for worker shard names
	gov     *governor.Governor
}

// New creates a table from cfg.
func New(cfg Config) *Table {
	if cfg.Slots == 0 {
		panic("dramhit: Config.Slots must be positive")
	}
	w := cfg.PrefetchWindow
	if w == 0 {
		w = DefaultPrefetchWindow
	}
	if w < 1 {
		panic("dramhit: PrefetchWindow must be >= 1")
	}
	h := cfg.Hash
	if h == nil {
		h = hashfn.City64
	}
	f := cfg.ProbeFilter
	if cfg.ProbeKernel == table.KernelScalar {
		// The filter is line-granular: it prunes whole-line key loads, which
		// only the SWAR drains issue. The scalar loop reads slot by slot, so
		// a tag sidecar would cost maintenance with nothing to gate.
		f = table.FilterNone
	}
	var arr *slotarr.Array
	var bkt *slotarr.BucketTable
	if cfg.Layout == table.LayoutBucket {
		// The bucket engine owns hashing (its byte hash must agree with the
		// fingerprints it publishes) and has no tag sidecar; the front-end
		// hash wraps the engine's so combining tags and prefetch targets
		// stay consistent with the fingerprint a probe will match.
		f = table.FilterNone
		bkt = slotarr.NewBucketTableSlots(cfg.Slots)
		h = func(k uint64) uint64 {
			var kb [8]byte
			putLE(kb[:], k)
			return bkt.HashOf(kb[:])
		}
	} else {
		arr = slotarr.New(cfg.Slots)
		if f == table.FilterTags {
			arr = slotarr.NewTagged(cfg.Slots)
		}
	}
	t := &Table{
		arr:     arr,
		bkt:     bkt,
		hash:    h,
		size:    cfg.Slots,
		window:  w,
		kernel:  cfg.ProbeKernel,
		filter:  f,
		combine: cfg.Combining,
		obsReg:  cfg.Observe,
	}
	switch cfg.Governor {
	case table.GovernorAuto:
		t.gov = governor.New(governor.Config{
			Window:    w,
			Combining: cfg.Combining == table.CombineOn,
			Tags:      f == table.FilterTags,
			Direct:    true,
		})
	case table.GovernorDirect:
		t.gov = governor.NewForced(governor.Decision{
			Direct: true,
			Window: w,
			Filter: f == table.FilterTags,
		})
	}
	if t.obsReg != nil && t.gov != nil {
		t.obsReg.AddSource("governor", t.gov.Metrics)
		if tr := t.obsReg.Trace(); tr != nil {
			gov := t.gov
			gov.OnDecision = func(d governor.Decision, epoch uint64) {
				var mode uint8
				if d.Direct {
					mode = 1
				}
				// Key carries the packed decision word, Arg the epoch: one
				// ring event per published configuration change.
				tr.Record(tr.NextID(), obs.EvGovern, mode, governor.Pack(d, epoch), uint32(epoch))
			}
		}
	}
	if t.obsReg != nil {
		t.obsReg.AddSource("dramhit", func() map[string]float64 {
			return map[string]float64{
				"fill":    t.Fill(),
				"live":    float64(t.Len()),
				"slots":   float64(t.Cap()),
				"window":  float64(t.Window()),
				"handles": float64(t.nhandle.Load()),
			}
		})
		t.obsReg.AddHeatmapSource("dramhit", t.heatmap)
	}
	return t
}

// Kernel returns the configured probe kernel.
func (t *Table) Kernel() table.ProbeKernel { return t.kernel }

// Filter returns the effective probe filter (FilterNone on scalar-kernel
// tables regardless of the configured value).
func (t *Table) Filter() table.ProbeFilter { return t.filter }

// Combining returns the configured in-window combining setting.
func (t *Table) Combining() table.Combining { return t.combine }

// Layout returns the physical layout the table was constructed with.
func (t *Table) Layout() table.Layout {
	if t.bkt != nil {
		return table.LayoutBucket
	}
	return table.LayoutFlat
}

// Bucket returns the bucket-layout engine, or nil on a flat table
// (benchmarks read its growth and stash statistics).
func (t *Table) Bucket() *slotarr.BucketTable { return t.bkt }

// Len returns the number of live entries.
func (t *Table) Len() int {
	if t.bkt != nil {
		return t.bkt.Len()
	}
	return int(t.live.Load()) + t.side.Count()
}

// Cap returns the slot capacity (the current capacity on a self-resizing
// bucket table).
func (t *Table) Cap() int {
	if t.bkt != nil {
		return t.bkt.Cap()
	}
	return int(t.size)
}

// Fill returns claimed slots (including tombstones) over capacity.
func (t *Table) Fill() float64 {
	if t.bkt != nil {
		return float64(t.bkt.Claimed()) / float64(t.bkt.Cap())
	}
	return float64(t.used.Load()) / float64(t.size)
}

// Window returns the configured prefetch window.
func (t *Table) Window() int { return t.window }

// pending is one in-flight request on a handle's prefetch queue. When
// combining is on, a pending may be a combine leader: chain links the
// piggybacked/forwarded Gets that share its probe, and an Upsert leader's
// req.Value carries the folded sum of every absorbed increment.
type pending struct {
	req     table.Request
	idx     uint64 // next slot to inspect
	probes  uint64 // slots inspected so far (full-table bound)
	startNS int64  // submission time, set only when latency tracking is on
	rval    uint64 // resolved value of a parked leader (state != stateProbing)
	trace   uint64 // lifecycle trace id; 0 = not sampled
	chain   int32  // 1+index into Handle.merged of the newest combined Get; 0 = none
	ngets   int32  // combined Gets on chain (bounds tryCombine's absorption)
	tag     uint8  // key's tag fingerprint (table.TagOf of the full hash)
	state   uint8  // stateProbing, or the parked resolution (chain mid-emission)
}

// Stats accumulates per-handle observability counters.
type Stats struct {
	// Completed counts finished operations by kind.
	Gets, Puts, Upserts, Deletes uint64
	// Hits counts Gets that found their key and Deletes that removed one.
	Hits uint64
	// Failed counts Puts/Upserts rejected because the table was full.
	Failed uint64
	// Reprobes counts line crossings (requests re-enqueued with a fresh
	// prefetch).
	Reprobes uint64
	// Lines counts cache lines touched (1 + reprobes per op); the paper
	// reports Lines/Ops ≈ 1.3 at 75% fill.
	Lines uint64
	// KeyLines counts line visits whose key lanes were actually consulted.
	// With FilterNone every visit counts; with FilterTags only tag-admitted
	// visits do, so KeyLines(tags) + TagSkips(tags) = KeyLines(none) on the
	// same single-threaded workload — the filter's saving is the gap.
	KeyLines uint64
	// TagSkips counts line visits rejected by the packed tag word alone:
	// every lane at or after the probe's entry offset provably held a
	// different published key, so no key lane was loaded.
	TagSkips uint64
	// TagHits counts tag-admitted line visits the kernel then resolved
	// (key found or probe chain terminated by an empty lane).
	TagHits uint64
	// TagFalse counts tag-admitted line visits the kernel then missed —
	// the filter's false positives (a colliding fingerprint or a
	// must-check zero tag on a lane that resolved nothing).
	TagFalse uint64
	// CombinedUpserts counts Upserts folded into a pending same-key Upsert
	// at Submit time. Each is also counted in Upserts — combining changes
	// how an operation executes, never whether it completed.
	CombinedUpserts uint64
	// PiggybackedGets counts Gets that shared a pending same-key Get's
	// probe, each receiving its own response from the one result.
	PiggybackedGets uint64
	// ForwardedGets counts Gets answered by store-to-load forwarding from a
	// pending same-key Put/Upsert's in-flight value.
	ForwardedGets uint64
	// CASAttempts counts atomic updates issued against slot words (key
	// claim/delete CASes plus value stores and adds). KeyLines+CASAttempts
	// per op is the combine A/B's memory-transaction metric: a combined
	// request adds zero to either term.
	CASAttempts uint64
}

// Ops returns the total completed operation count.
func (s *Stats) Ops() uint64 { return s.Gets + s.Puts + s.Upserts + s.Deletes }

// Core returns the counters every probe configuration must agree on: the
// filter-observability fields (KeyLines, TagSkips, TagHits, TagFalse) and
// CASAttempts are zeroed because they intentionally differ across kernels
// and filters, while completions, hits, failures, reprobes, line touches
// and the combine counters are execution-model-invariant (a merge decision
// reads only the handle's ring, which evolves identically under every
// kernel and filter). The equivalence property tests compare Cores.
func (s Stats) Core() Stats {
	c := s
	c.KeyLines, c.TagSkips, c.TagHits, c.TagFalse = 0, 0, 0, 0
	c.CASAttempts = 0
	return c
}

// Handle is a single-goroutine accessor holding the prefetch queue. Handles
// must not be shared between goroutines; create one per worker. Any number
// of handles may operate on the same Table concurrently.
type Handle struct {
	t       *Table
	q       []pending // ring buffer, len power of two
	mask    int
	head    int // enqueue position
	tail    int // dequeue position (oldest)
	window  int
	kernel  table.ProbeKernel
	filter  table.ProbeFilter
	combine bool

	// bh is the bucket-layout engine view (non-nil iff the table is
	// LayoutBucket): it owns the handle's arena writer/pin and the
	// engine-level probe counters that Stats folds into KeyLines/Reprobes.
	bh *slotarr.BucketHandle

	// ptags mirrors each ring slot's tag fingerprint, one byte per slot
	// packed eight to a word, so the combine scan checks the whole window
	// with a handful of SWAR byte-matches instead of touching any pending
	// struct. Bytes are written at enqueue and never cleared at dequeue;
	// liveness is decided positionally (see combineScan). Nil when
	// combining is off.
	ptags []uint64
	// tagcnt counts live pending requests per tag byte. It gates the combine
	// scan down to one L1 load on the (overwhelmingly common, under low skew)
	// submissions whose tag matches nothing in flight: enqueue increments,
	// position retirement decrements (reading the tag back from ptags), and
	// Submit scans only when tagcnt[tag] != 0. Entry 0 absorbs the
	// decrements of parked slots, whose bytes were cleared (and counts
	// released) at park time; published tags are 1..255, so it is never read.
	tagcnt [256]int32
	// merged is the arena of combined Gets riding pending leaders; free
	// entries are linked through next with the same 1+index encoding the
	// chains use, headed by mfree. Steady state allocates nothing.
	merged []mergedGet
	mfree  int32

	stats Stats
	sink  uint64 // accumulates prefetch loads so they are not dead code

	// Observability (all nil/zero when the table has no registry — the hot
	// path then pays exactly one predictable nil check per site). The handle
	// accumulates into its plain stats fields as always and obsPublish
	// copies them into the padded shard at Submit/Flush boundaries, so
	// observe-on adds no per-op shared-line traffic.
	obsw       *obs.Worker
	trace      *obs.TraceRing
	traceEvery int // sample 1-in-N submissions into the trace ring
	traceCnt   int
	pubCnt     int    // Submit calls since the last throttled publish
	occMax     uint64 // high-water pipeline occupancy since creation
	// hot is the worker's hot-key sketch shard (nil unless the registry has
	// hot keys enabled): every submitted key is offered, one predictable nil
	// check per request otherwise. opLat arms per-op-class latency stamping
	// (two clock reads per op, priced like onComplete).
	hot   *obs.TopK
	opLat bool

	// onComplete, when set, receives every completed request and its
	// latency in nanoseconds (used by the Figure 9 latency experiment).
	onComplete func(req table.Request, lat time.Duration)

	// Byte pipeline (netbatch.go): the ring of in-flight byte-string
	// requests whose home bucket lines were prefetched at SubmitBytes, and
	// the completion callback that replaces per-op response channels on the
	// network path. Nil until OnByteComplete arms it (bucket layout only).
	byteQ  []bytePending
	bhead  int
	btail  int
	onByte func(ByteCompletion)

	// Governor plumbing (all nil/zero when the table has no governor — the
	// hot path then pays exactly one predictable nil check in Submit). The
	// handle caches the governor's packed decision word and re-decodes only
	// when it changes, and only while its own pipeline is empty, so a
	// configuration change never tears an in-flight window.
	gov       *governor.Governor
	govWord   uint64
	direct    bool // cached Decision.Direct: Submit bypasses the ring
	govCnt    int  // Submit calls since the last poll
	govLastNS int64
	// govPrev* snapshot the stats fields the sensor deltas are computed
	// from at the last poll.
	govPrevOps   uint64
	govPrevChits uint64
	govPrevSkips uint64
	govPrevLines uint64
}

// NewHandle creates an accessor for the table.
func (t *Table) NewHandle() *Handle {
	capacity := 1
	for capacity < t.window+1 {
		capacity <<= 1
	}
	h := &Handle{
		t:       t,
		q:       make([]pending, capacity),
		mask:    capacity - 1,
		window:  t.window,
		kernel:  t.kernel,
		filter:  t.filter,
		combine: t.combine == table.CombineOn,
	}
	if h.combine {
		h.ptags = make([]uint64, (capacity+7)/8)
	}
	if t.bkt != nil {
		h.bh = t.bkt.NewHandle()
	}
	if t.obsReg != nil {
		n := t.nhandle.Add(1)
		h.obsw = t.obsReg.Worker("dramhit-h" + strconv.FormatInt(n-1, 10))
		h.trace = t.obsReg.Trace()
		h.traceEvery = t.obsReg.TraceSampleN()
		h.hot = h.obsw.Hot
		h.opLat = t.obsReg.OpLatencyEnabled()
	}
	if t.gov != nil {
		h.gov = t.gov
		h.govWord = t.gov.Word()
		h.applyDecision(governor.Unpack(h.govWord))
	}
	return h
}

// applyDecision actuates a governor decision on this handle. Callers must
// only invoke it while the pipeline is empty (head == tail): every toggle is
// proven safe at that boundary — tagcnt is balanced, stale ptags bytes can
// only cause missed combines or key-confirmed matches, and PublishTag stays
// unconditional on insert paths so a re-enabled filter never misses a tag.
// The decision is clamped to the table's constructed capabilities.
func (h *Handle) applyDecision(d governor.Decision) {
	h.direct = d.Direct
	w := d.Window
	if w < 1 {
		w = 1
	}
	if w > h.t.window {
		w = h.t.window // ring capacity was sized for the constructed window
	}
	h.window = w
	h.combine = d.Combine && h.ptags != nil
	if d.Filter && h.t.filter == table.FilterTags {
		h.filter = table.FilterTags
	} else {
		h.filter = table.FilterNone
	}
}

// govPollEvery throttles governor polls to one per govPollEvery Submit
// calls: a poll is one time.Now plus one atomic load (plus a Feed when the
// sensor deltas are nonzero), so amortized over batched submissions the
// governed hot path stays within noise of the ungoverned one.
const govPollEvery = 64

// govPoll feeds the governor this handle's sensor deltas and picks up a
// changed decision word at a safe (empty-pipeline) boundary.
func (h *Handle) govPoll() {
	if h.govCnt++; h.govCnt < govPollEvery {
		return
	}
	h.govCnt = 0
	now := time.Now().UnixNano()
	if h.govLastNS != 0 {
		s := &h.stats
		ops := s.Ops()
		chits := s.CombinedUpserts + s.PiggybackedGets + s.ForwardedGets
		lines := s.KeyLines + s.TagSkips
		h.gov.Feed(governor.Sample{
			Ops:         ops - h.govPrevOps,
			NS:          uint64(now - h.govLastNS),
			CombineHits: chits - h.govPrevChits,
			TagSkips:    s.TagSkips - h.govPrevSkips,
			Lines:       lines - h.govPrevLines,
		})
		h.govPrevOps, h.govPrevChits = ops, chits
		h.govPrevSkips, h.govPrevLines = s.TagSkips, lines
	}
	h.govLastNS = now
	h.govApply()
}

// govApply adopts a changed decision word, but only at the empty-pipeline
// boundary where every actuation is safe. A handle that streams without
// ever draining simply keeps its current configuration (Flush also calls
// this, so the common submit/flush batch shape applies within one batch).
func (h *Handle) govApply() {
	if w := h.gov.Word(); w != h.govWord && h.head == h.tail {
		h.govWord = w
		h.applyDecision(governor.Unpack(w))
	}
}

// GovernorState reports the governor's current decision, epochs stepped,
// and convergence flag; ok is false (and the rest zero) on an ungoverned
// table. Benchmarks record the final decision alongside their Mops.
func (t *Table) GovernorState() (d governor.Decision, epochs uint64, pinned, ok bool) {
	if t.gov == nil {
		return governor.Decision{}, 0, false, false
	}
	return t.gov.Decision(), t.gov.Epochs(), t.gov.Pinned(), true
}

// SetLatencyHook installs a completion callback; pass nil to disable.
// Enabling it adds a timestamp per request.
func (h *Handle) SetLatencyHook(fn func(req table.Request, lat time.Duration)) {
	h.onComplete = fn
}

// Stats returns a copy of the handle's counters.
func (h *Handle) Stats() Stats { return h.stats }

// Pending returns the number of requests currently in the pipeline.
func (h *Handle) Pending() int { return h.head - h.tail }

func (h *Handle) enqueue(p pending) {
	s := h.head & h.mask
	h.q[s] = p
	if h.combine {
		shift := uint(s&7) * 8
		h.ptags[s>>3] = h.ptags[s>>3]&^(0xff<<shift) | uint64(p.tag)<<shift
		h.tagcnt[p.tag]++
	}
	h.head++
	if p.trace != 0 {
		// Every enqueue is either a request's first entry into the pipeline
		// (probes == 0: Submit) or a line crossing's re-entry (Reprobe); the
		// discrimination here keeps the drains free of trace calls.
		if p.probes == 0 {
			h.trace.Record(p.trace, obs.EvSubmit, uint8(p.req.Op), p.req.Key, 0)
		} else {
			h.trace.Record(p.trace, obs.EvReprobe, uint8(p.req.Op), p.req.Key, uint32(p.probes))
		}
	}
}

// pop retires the queue-head position. With combining on it releases the
// slot's tag byte from the per-tag occupancy counts; a reprobe's re-enqueue
// re-increments the same tag, and a parked leader released its count (and
// cleared its byte) when it parked, so the byte read here is 0 and the
// decrement lands on the never-consulted entry 0.
func (h *Handle) pop() {
	if h.combine {
		s := h.tail & h.mask
		h.tagcnt[uint8(h.ptags[s>>3]>>(uint(s&7)*8))]--
	}
	h.tail++
}

func (h *Handle) dequeue() pending {
	p := h.q[h.tail&h.mask]
	h.pop()
	return p
}

// Submit feeds reqs into the pipeline and collects completed responses into
// resps. It returns the number of requests consumed and the number of
// responses written. nreq < len(reqs) only when resps ran out of space for
// completions that had to drain first; call Submit again with the remaining
// requests and a fresh (or re-sliced) response buffer. Only Get operations
// produce responses; Put, Upsert and Delete complete silently (as in the
// paper, where updates issued through the batched interface return no
// result).
//
// Ordering: requests complete out of order. In particular, two requests for
// the SAME key in one pipeline may execute out of submission order when the
// earlier one reprobes (it re-enters the queue behind the later one) — a Get
// submitted after a Put of the same key may therefore miss it. When
// read-your-writes is needed, Flush between the write and the read; this is
// the latency-for-throughput trade the paper makes explicit.
//
// With combining on (the default), a request whose key already has a
// pending request in this handle's queue may be merged into it instead of
// enqueueing: it still completes (and a Get still gets its own response
// carrying its own ID), but shares the pending request's probe instead of
// issuing its own prefetch, line loads and atomics. A merged Get is ordered
// after the pending write it forwarded from — a strictly stronger ordering
// than the uncombined pipeline gives same-key pairs.
func (h *Handle) Submit(reqs []table.Request, resps []table.Response) (nreq, nresp int) {
	if h.obsw != nil {
		defer h.obsPublishThrottled()
	}
	if h.gov != nil {
		h.govPoll()
		if h.direct {
			// Degraded direct mode: the governor concluded pipelining cannot
			// pay here, so Submit executes each request synchronously inline
			// — a folklore-style probe that keeps the SWAR kernel and the
			// tag filter but skips the ring, the prefetch bookkeeping and
			// the out-of-order completion machinery entirely.
			return h.submitDirect(reqs, resps)
		}
	}
	for nreq < len(reqs) {
		req := reqs[nreq]
		var hv uint64
		hashed := false
		if h.combine && h.head != h.tail && req.Op != table.Delete &&
			!table.IsReservedKey(req.Key) {
			// Absorbing never grows the queue, so a merge skips the drain
			// loop entirely: a same-key burst completes without a single
			// additional memory transaction.
			hv = h.t.hash(req.Key)
			hashed = true
			// tagcnt gates the ring scan down to one L1 load when nothing in
			// flight shares the tag byte — the overwhelmingly common case
			// under low skew, which keeps the uniform workload at the
			// uncombined pipeline's speed.
			if tag := table.TagOf(hv); h.tagcnt[tag] != 0 {
				if pos := h.combineScan(req.Key, tag); pos >= 0 && h.tryCombine(req, pos) {
					// The sketch feed sits on the combining sidecar path: a
					// merged request is exactly a repeated key, the signal the
					// hot-key ranking exists to surface.
					if h.hot != nil {
						h.hot.OfferSampled(req.Key)
					}
					nreq++
					continue
				}
			}
		}
		for h.Pending() >= h.window {
			wrote, blocked := h.processOldest(resps, &nresp)
			if blocked {
				return nreq, nresp
			}
			_ = wrote
		}
		// Feed after the backpressure loop so a blocked-and-resubmitted
		// request is counted once, at the submission that actually enqueues.
		if h.hot != nil {
			h.hot.OfferSampled(req.Key)
		}
		p := pending{req: req}
		if h.onComplete != nil || h.opLat {
			p.startNS = time.Now().UnixNano()
		}
		if h.trace != nil {
			if h.traceCnt++; h.traceCnt >= h.traceEvery {
				h.traceCnt = 0
				p.trace = h.trace.NextID()
			}
		}
		if !hashed {
			hv = h.t.hash(p.req.Key)
		}
		if h.t.bkt != nil {
			// Bucket layout: idx carries the FULL hash — the engine resizes
			// itself, so a materialized slot index would go stale; the drain
			// re-derives the bucket from the hash against the live state.
			p.idx = hv
			p.tag = table.TagOf(hv)
			h.t.bkt.Prefetch(hv)
			h.enqueue(p)
			h.stats.Lines++
			nreq++
			continue
		}
		p.idx = hashfn.Fastrange(hv, h.t.size)
		p.tag = table.TagOf(hv)
		if h.filter == table.FilterTags {
			// The tag word stands in for the data prefetch when it already
			// proves the home line will be skipped: the drain's gate will
			// reject it from the same (tiny, cache-hot) sidecar without ever
			// pulling the 64-byte data line — the filter's bandwidth saving.
			base := p.idx &^ (table.SlotsPerCacheLine - 1)
			if h.t.arr.LineCandidates(base, p.tag)>>(p.idx-base) != 0 {
				h.sink += h.t.arr.Prefetch(p.idx)
			}
		} else {
			h.sink += h.t.arr.Prefetch(p.idx)
		}
		h.enqueue(p)
		h.stats.Lines++
		nreq++
	}
	return nreq, nresp
}

// Flush drains the pipeline, writing completions into resps. It returns the
// number of responses written and whether the pipeline is now empty; when
// done is false the response buffer filled up and Flush must be called
// again. Typically called once at the end of a dataset (paper §3.1).
func (h *Handle) Flush(resps []table.Response) (nresp int, done bool) {
	if h.obsw != nil {
		defer h.obsPublish()
	}
	for h.Pending() > 0 {
		if _, blocked := h.processOldest(resps, &nresp); blocked {
			return nresp, false
		}
	}
	if h.gov != nil {
		// The pipeline is provably empty here: adopt any pending decision so
		// submit/flush-batched callers actuate within one batch even if no
		// Submit poll landed on an empty window.
		h.govApply()
	}
	return nresp, true
}

// processOldest pops the oldest pending request and executes it over its
// current (prefetched) cache line. If the request resolves it completes,
// possibly writing a response; if it must cross into the next cache line it
// is re-enqueued with a new prefetch. blocked reports that a Get completed
// but resps had no room — the request is left at the queue head.
//
// The operation kind is dispatched exactly once here: each SWAR drain (see
// swar.go) contains the line-granular kernel loop specialized for its op, so
// the probe loop itself carries no per-slot op switch.
func (h *Handle) processOldest(resps []table.Response, nresp *int) (wrote, blocked bool) {
	p := h.q[h.tail&h.mask]
	if p.trace != 0 && p.state == stateProbing {
		h.trace.Record(p.trace, obs.EvProbe, uint8(p.req.Op), p.req.Key, uint32(p.probes))
	}

	// A parked leader already resolved; only its combined-Get chain is
	// still waiting for response space. Resume emitting where retire
	// stopped.
	if p.state != stateProbing {
		if h.emitChain(&p, p.rval, p.state == stateHit, resps, nresp) {
			h.pop()
			return true, false
		}
		h.q[h.tail&h.mask] = p // chain shrank; stay parked at the head
		return false, true
	}

	// Bucket layout: the one-line probe resolves synchronously against the
	// engine (reserved keys are ordinary byte strings there — no side
	// slots), so the drain is a single dispatch with no reprobe loop.
	if h.t.bkt != nil {
		return h.processBucket(p, resps, nresp)
	}

	// Reserved keys bypass the array entirely (side slots are always
	// cache-hot); resolve immediately.
	if s := h.t.side.For(p.req.Key); s != nil {
		if p.req.Op == table.Get && *nresp >= len(resps) {
			return false, true
		}
		h.pop()
		h.completeSide(s, p, resps, nresp)
		return true, false
	}

	if h.kernel == table.KernelScalar {
		return h.processScalar(p, resps, nresp)
	}
	switch p.req.Op {
	case table.Get:
		return h.drainGet(p, resps, nresp)
	case table.Put:
		return h.drainUpdate(p, false, resps, nresp)
	case table.Upsert:
		return h.drainUpdate(p, true, resps, nresp)
	default:
		return h.drainDelete(p)
	}
}

// prefetchNext issues the reprobe prefetch for the line starting at slot
// next (line-aligned). In tags mode the data pull is elided when the packed
// tag word already proves the line will be rejected on arrival, so a
// skipped line costs neither a key-lane load nor a cache-line fill. Tags
// are write-once (0 → fingerprint), so a tag published between this check
// and the drain can only admit lanes the check rejected — at worst an
// unprefetched but fully correct probe, never a wrong skip.
func (h *Handle) prefetchNext(next uint64, tag uint8) {
	if h.filter == table.FilterTags && h.t.arr.LineCandidates(next, tag) == 0 {
		return
	}
	h.sink += h.t.arr.Prefetch(next)
}

// processScalar is the pre-SWAR slot-by-slot hot path, retained as the
// table.KernelScalar ablation baseline (and the reference the SWAR
// equivalence property test compares against).
func (h *Handle) processScalar(p pending, resps []table.Response, nresp *int) (wrote, blocked bool) {
	t := h.t
	h.stats.KeyLines++
	line := slotarr.LineOf(p.idx)
	for {
		// Crossing into the next cache line: reprobe.
		if slotarr.LineOf(p.idx) != line || p.probes >= t.size {
			if p.probes >= t.size {
				// Full-table probe: the operation fails (Get/Delete: not
				// found; Put/Upsert: table full).
				if p.req.Op == table.Get && *nresp >= len(resps) {
					return false, true
				}
				return h.completeFailed(p, resps, nresp)
			}
			h.pop()
			h.sink += t.arr.Prefetch(p.idx)
			h.stats.Reprobes++
			h.stats.Lines++
			h.enqueue(p)
			return false, false
		}

		k := t.arr.Key(p.idx)
		switch {
		case k == p.req.Key:
			switch p.req.Op {
			case table.Get:
				if *nresp >= len(resps) {
					return false, true
				}
				return h.retire(p, table.Get, t.arr.WaitValue(p.idx), true, false, resps, nresp)
			case table.Put:
				h.stats.CASAttempts++
				t.arr.StoreValue(p.idx, p.req.Value)
				return h.retire(p, table.Put, p.req.Value, true, false, resps, nresp)
			case table.Upsert:
				h.stats.CASAttempts++
				return h.retire(p, table.Upsert, t.arr.AddValue(p.idx, p.req.Value), true, false, resps, nresp)
			case table.Delete:
				h.pop()
				h.stats.CASAttempts++
				if t.arr.CASKey(p.idx, p.req.Key, table.TombstoneKey) {
					t.live.Add(-1)
					h.finish(p, table.Delete, true)
				} else {
					h.finish(p, table.Delete, false)
				}
			}
			return true, false

		case k == table.EmptyKey:
			switch p.req.Op {
			case table.Get:
				if *nresp >= len(resps) {
					return false, true
				}
				return h.retire(p, table.Get, 0, false, false, resps, nresp)
			case table.Delete:
				h.pop()
				h.finish(p, table.Delete, false)
				return true, false
			case table.Put, table.Upsert:
				h.stats.CASAttempts++
				if t.arr.CASKey(p.idx, table.EmptyKey, p.req.Key) {
					t.arr.PublishTag(p.idx, p.tag)
					h.stats.CASAttempts++
					t.arr.StoreValue(p.idx, p.req.Value)
					t.used.Add(1)
					t.live.Add(1)
					return h.retire(p, p.req.Op, p.req.Value, true, false, resps, nresp)
				}
				// Claim race lost: the slot now holds some key; re-inspect
				// it without advancing.
				continue
			}

		default:
			// Another key or a tombstone: advance within the line.
			p.idx++
			if p.idx == t.size {
				p.idx = 0
				// Wrapping lands on a different line; the loop's crossing
				// check will catch it because LineOf(0) != line (unless the
				// table is a single line, where probes bound terminates).
			}
			p.probes++
		}
	}
}

// completeSide resolves a reserved-key request against its side slot.
func (h *Handle) completeSide(s *slotarr.SideSlot, p pending, resps []table.Response, nresp *int) {
	switch p.req.Op {
	case table.Get:
		v, ok := s.Get()
		resps[*nresp] = table.Response{ID: p.req.ID, Value: v, Found: ok}
		*nresp++
		h.finish(p, table.Get, ok)
	case table.Put:
		s.Put(p.req.Value)
		h.finish(p, table.Put, true)
	case table.Upsert:
		s.Upsert(p.req.Value)
		h.finish(p, table.Upsert, true)
	case table.Delete:
		h.finish(p, table.Delete, s.Delete())
	}
}

// completeFailed resolves a request whose probe exhausted the table. The
// caller must have verified response space for a Get leader and must NOT
// have advanced h.tail (retire does, or parks the leader's chain).
func (h *Handle) completeFailed(p pending, resps []table.Response, nresp *int) (wrote, blocked bool) {
	switch p.req.Op {
	case table.Get:
		return h.retire(p, table.Get, 0, false, false, resps, nresp)
	case table.Put, table.Upsert:
		return h.retire(p, p.req.Op, 0, false, true, resps, nresp)
	default:
		h.pop()
		h.finish(p, table.Delete, false)
		return true, false
	}
}

// countOp advances the per-op completion counters — the whole cost of
// completing a request when no trace or latency hook is attached (the direct
// path calls it instead of finish to skip the pending copy).
func (h *Handle) countOp(op table.Op, hit bool) {
	switch op {
	case table.Get:
		h.stats.Gets++
	case table.Put:
		h.stats.Puts++
	case table.Upsert:
		h.stats.Upserts++
	case table.Delete:
		h.stats.Deletes++
	}
	if hit && (op == table.Get || op == table.Delete) {
		h.stats.Hits++
	}
}

// finish updates counters and fires the latency hook.
func (h *Handle) finish(p pending, op table.Op, hit bool) {
	h.countOp(op, hit)
	if p.trace != 0 {
		var arg uint32
		if hit {
			arg = 1
		}
		h.trace.Record(p.trace, obs.EvComplete, uint8(op), p.req.Key, arg)
	}
	if h.onComplete != nil || h.opLat {
		// startNS is only stamped at Submit when a latency consumer (the
		// hook or per-op histograms) was already armed; a request that
		// predates it completes with a zero latency instead of a nonsense
		// now-minus-zero reading (and skips the second time.Now() call
		// entirely). When neither is armed this branch is the whole cost:
		// no timestamps are taken anywhere.
		var lat time.Duration
		if p.startNS != 0 {
			lat = time.Duration(time.Now().UnixNano() - p.startNS)
			if h.opLat {
				h.obsw.Op[obs.OpClass(op, hit)].Record(uint64(lat))
			}
		}
		if h.onComplete != nil {
			h.onComplete(p.req, lat)
		}
	}
}

// obsPublishEvery throttles Submit-side publishes: small batches (the
// common batch-16 streaming shape) would otherwise pay ~20 atomic stores
// per 16 ops, which alone exceeds the ≤2% observe-on budget. Every 64th
// Submit — plus every Flush, so quiescent handles are always exact —
// bounds the publish cost at a fraction of a store per op while scrapes
// still see values at most one window behind.
const obsPublishEvery = 64

// obsPublishThrottled tracks the occupancy high-water cheaply on every
// Submit and forwards one call in obsPublishEvery to obsPublish.
func (h *Handle) obsPublishThrottled() {
	if occ := uint64(h.Pending()); occ > h.occMax {
		h.occMax = occ
	}
	if h.pubCnt++; h.pubCnt >= obsPublishEvery {
		h.pubCnt = 0
		h.obsPublish()
	}
}

// obsPublish copies the handle's plain counters into its padded registry
// shard and refreshes the pipeline gauges. Called at Flush exit and every
// obsPublishEvery-th Submit (one batch, never one op), so the amortized
// cost is a fraction of an uncontended atomic store per op — this is what
// keeps observe-on inside the ≤2% overhead budget while scrapes still see
// near-live values.
func (h *Handle) obsPublish() {
	w := h.obsw
	s := &h.stats
	w.Store(obs.CGets, s.Gets)
	w.Store(obs.CPuts, s.Puts)
	w.Store(obs.CUpserts, s.Upserts)
	w.Store(obs.CDeletes, s.Deletes)
	w.Store(obs.CHits, s.Hits)
	w.Store(obs.CFailed, s.Failed)
	w.Store(obs.CReprobes, s.Reprobes)
	w.Store(obs.CLines, s.Lines)
	w.Store(obs.CKeyLines, s.KeyLines)
	w.Store(obs.CTagSkips, s.TagSkips)
	w.Store(obs.CTagHits, s.TagHits)
	w.Store(obs.CTagFalse, s.TagFalse)
	w.Store(obs.CCombinedUpserts, s.CombinedUpserts)
	w.Store(obs.CPiggybackedGets, s.PiggybackedGets)
	w.Store(obs.CForwardedGets, s.ForwardedGets)
	w.Store(obs.CCASAttempts, s.CASAttempts)
	occ := uint64(h.Pending())
	if occ > h.occMax {
		h.occMax = occ
	}
	w.SetGauge(obs.GWindowOcc, occ)
	w.SetGauge(obs.GWindowMax, h.occMax)
}
