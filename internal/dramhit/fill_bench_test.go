package dramhit

import (
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// BenchmarkFillSweep measures pipelined Gets under both probe kernels as the
// table fills. It is the context for BenchmarkProbeKernel's point
// measurements: at low fill nearly every probe resolves in its home slot
// (where both kernels cost one load, thanks to the drains' entry-lane peek),
// so the curves track each other; the kernels only diverge once cluster
// walks appear, which is the regime the lane-parallel compare targets. The
// fixed key seed keeps runs benchstat-comparable.
func BenchmarkFillSweep(b *testing.B) {
	const size = 1 << 20
	for _, fill := range []struct {
		name string
		num  int
	}{{"f50", size / 2}, {"f75", size * 3 / 4}, {"f875", size * 7 / 8}, {"f94", size * 15 / 16}} {
		for _, k := range []table.ProbeKernel{table.KernelScalar, table.KernelSWAR} {
			b.Run(k.String()+"/"+fill.name, func(b *testing.B) {
				tbl := New(Config{Slots: size, ProbeKernel: k})
				h := tbl.NewHandle()
				keys := workload.UniqueKeys(21, fill.num)
				vals := make([]uint64, len(keys))
				h.PutBatch(keys, vals)
				found := make([]bool, len(keys))
				b.ResetTimer()
				for done := 0; done < b.N; done += len(keys) {
					n := len(keys)
					if b.N-done < n {
						n = b.N - done
					}
					h.GetBatch(keys[:n], vals[:n], found[:n])
				}
			})
		}
	}
}
