package dramhit

import (
	"dramhit/internal/table"
)

// Sync adapts a Handle to the synchronous table.Map interface by submitting
// one request and flushing. It exists for the conformance test suite and
// for callers that want DRAMHiT's layout without the batched interface; it
// deliberately forfeits the pipeline (every op pays its miss synchronously,
// like Folklore), so it is not how the table is meant to be used.
type Sync struct {
	h     *Handle
	reqs  [1]table.Request
	resps [1]table.Response
}

// NewSync creates a synchronous adapter with its own handle.
func (t *Table) NewSync() *Sync {
	return &Sync{h: t.NewHandle()}
}

// Clone returns a new single-goroutine view over the same table. A Sync is
// not safe for concurrent use; give each goroutine its own clone.
func (s *Sync) Clone() table.Map { return s.h.t.NewSync() }

func (s *Sync) do(req table.Request) (table.Response, bool) {
	s.reqs[0] = req
	nreq, n := s.h.Submit(s.reqs[:], s.resps[:])
	if nreq != 1 {
		panic("dramhit: Sync submit did not consume its request")
	}
	for {
		more, done := s.h.Flush(s.resps[n:])
		n += more
		if done {
			break
		}
	}
	if n > 0 {
		return s.resps[0], true
	}
	return table.Response{}, false
}

// Get implements table.Map.
func (s *Sync) Get(key uint64) (uint64, bool) {
	r, ok := s.do(table.Request{Op: table.Get, Key: key})
	if !ok {
		return 0, false
	}
	return r.Value, r.Found
}

// Put implements table.Map.
func (s *Sync) Put(key, value uint64) bool {
	before := s.h.stats.Failed
	s.do(table.Request{Op: table.Put, Key: key, Value: value})
	return s.h.stats.Failed == before
}

// Upsert implements table.Map. The returned value is re-read, which is
// exact only in the absence of racing upserts to the same key (the batched
// interface does not report update results; see paper §3.2).
func (s *Sync) Upsert(key, delta uint64) (uint64, bool) {
	before := s.h.stats.Failed
	s.do(table.Request{Op: table.Upsert, Key: key, Value: delta})
	if s.h.stats.Failed != before {
		return 0, false
	}
	v, _ := s.Get(key)
	return v, true
}

// Delete implements table.Map.
func (s *Sync) Delete(key uint64) bool {
	before := s.h.stats.Hits
	s.do(table.Request{Op: table.Delete, Key: key})
	return s.h.stats.Hits != before
}

// Len implements table.Map.
func (s *Sync) Len() int { return s.h.t.Len() }

// Cap implements table.Map.
func (s *Sync) Cap() int { return s.h.t.Cap() }

var _ table.Map = (*Sync)(nil)

// GetBatch looks up keys and stores results positionally: found[i] and
// vals[i] correspond to keys[i]. It demonstrates the ID-matching pattern
// from the paper (submit the array position as the identifier, scatter
// completions by ID). vals and found must be at least as long as keys.
func (h *Handle) GetBatch(keys []uint64, vals []uint64, found []bool) {
	reqs := make([]table.Request, 0, 64)
	resps := make([]table.Response, len(keys)+h.window)
	scatter := func(rs []table.Response) {
		for _, r := range rs {
			vals[r.ID] = r.Value
			found[r.ID] = r.Found
		}
	}
	for start := 0; start < len(keys); {
		reqs = reqs[:0]
		end := start + cap(reqs)
		if end > len(keys) {
			end = len(keys)
		}
		for i := start; i < end; i++ {
			reqs = append(reqs, table.Request{Op: table.Get, Key: keys[i], ID: uint64(i)})
		}
		rem := reqs
		for len(rem) > 0 {
			nreq, nresp := h.Submit(rem, resps)
			scatter(resps[:nresp])
			rem = rem[nreq:]
		}
		start = end
	}
	for {
		nresp, done := h.Flush(resps)
		scatter(resps[:nresp])
		if done {
			return
		}
	}
}

// PutBatch inserts all key/value pairs and flushes the pipeline.
func (h *Handle) PutBatch(keys, vals []uint64) {
	reqs := make([]table.Request, len(keys))
	for i := range keys {
		reqs[i] = table.Request{Op: table.Put, Key: keys[i], Value: vals[i]}
	}
	var none []table.Response
	for len(reqs) > 0 {
		nreq, _ := h.Submit(reqs, none)
		reqs = reqs[nreq:]
	}
	for {
		if _, done := h.Flush(none); done {
			return
		}
	}
}

// UpsertBatch applies delta upserts for every key and flushes.
func (h *Handle) UpsertBatch(keys []uint64, delta uint64) {
	reqs := make([]table.Request, len(keys))
	for i := range keys {
		reqs[i] = table.Request{Op: table.Upsert, Key: keys[i], Value: delta}
	}
	var none []table.Response
	for len(reqs) > 0 {
		nreq, _ := h.Submit(reqs, none)
		reqs = reqs[nreq:]
	}
	for {
		if _, done := h.Flush(none); done {
			return
		}
	}
}
