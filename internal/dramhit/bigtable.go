package dramhit

import (
	"runtime"
	"sync/atomic"

	"dramhit/internal/hashfn"
	"dramhit/internal/table"
)

// BigTable implements the paper's second atomicity protocol (§3
// "Atomicity"): for key/value tuples larger than 16 bytes, a 32-bit version
// accompanies each tuple. A writer makes the version odd before mutating the
// value bytes and even again after; readers wait out odd versions and retry
// if the version changed across their copy, so a multi-cache-line read is
// never torn. Keys remain 8 bytes (published with a CAS claim as in the main
// table); values are fixed-size byte blocks chosen at construction.
type BigTable struct {
	keys     []uint64
	versions []atomic.Uint32
	// values holds ceil(vsize/8) words per slot. Individual words are
	// accessed atomically so the seqlock's optimistic reads are data-race
	// free under the Go memory model (a hardware seqlock reads the bytes
	// plainly and discards torn copies; Go's race detector would flag the
	// discarded read, so each word load is atomic and the version still
	// provides cross-word atomicity).
	values []uint64
	words  int
	vsize  int
	size   uint64
	hash   func(uint64) uint64
	live   atomic.Int64
}

// NewBigTable creates a table of n slots with vsize-byte values (vsize > 0;
// intended for vsize > 8, where the single-word protocol no longer applies).
func NewBigTable(n uint64, vsize int) *BigTable {
	if n == 0 || vsize <= 0 {
		panic("dramhit: NewBigTable requires positive slots and value size")
	}
	words := (vsize + 7) / 8
	return &BigTable{
		keys:     make([]uint64, n),
		versions: make([]atomic.Uint32, n),
		values:   make([]uint64, int(n)*words),
		words:    words,
		vsize:    vsize,
		size:     n,
		hash:     hashfn.City64,
	}
}

// ValueSize returns the fixed value size in bytes.
func (t *BigTable) ValueSize() int { return t.vsize }

// Len returns the number of live entries.
func (t *BigTable) Len() int { return int(t.live.Load()) }

// Cap returns the slot count.
func (t *BigTable) Cap() int { return int(t.size) }

// storeVal writes value into slot i's words with atomic stores (caller
// holds the slot's version lock).
func (t *BigTable) storeVal(i uint64, value []byte) {
	off := int(i) * t.words
	for w := 0; w < t.words; w++ {
		var chunk [8]byte
		copy(chunk[:], value[w*8:min(len(value), w*8+8)])
		atomic.StoreUint64(&t.values[off+w], leUint64(chunk[:]))
	}
}

// loadVal copies slot i's words into dst with atomic loads.
func (t *BigTable) loadVal(i uint64, dst []byte) {
	off := int(i) * t.words
	for w := 0; w < t.words; w++ {
		var chunk [8]byte
		lePutUint64(chunk[:], atomic.LoadUint64(&t.values[off+w]))
		copy(dst[w*8:min(len(dst), w*8+8)], chunk[:])
	}
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func lePutUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func (t *BigTable) keyAt(i uint64) uint64 {
	return atomic.LoadUint64(&t.keys[i])
}

// lockSlot transitions the slot's version from even to odd, spinning past a
// concurrent writer.
func (t *BigTable) lockSlot(i uint64) uint32 {
	v := &t.versions[i]
	for spins := 0; ; spins++ {
		cur := v.Load()
		if cur&1 == 0 && v.CompareAndSwap(cur, cur+1) {
			return cur + 1
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

func (t *BigTable) unlockSlot(i uint64, odd uint32) {
	t.versions[i].Store(odd + 1)
}

// Put stores value (length must equal ValueSize) under key, returning false
// only if the table is full. The reserved key values (EmptyKey,
// TombstoneKey, MovedKey) are not supported by BigTable (it keeps the
// protocol exposition focused; wrap keys if you need the full space).
func (t *BigTable) Put(key uint64, value []byte) bool {
	if len(value) != t.vsize {
		panic("dramhit: BigTable.Put value size mismatch")
	}
	if table.IsReservedKey(key) {
		panic("dramhit: BigTable does not support reserved keys")
	}
	i := hashfn.Fastrange(t.hash(key), t.size)
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.keyAt(i); k {
		case key:
			odd := t.lockSlot(i)
			t.storeVal(i, value)
			t.unlockSlot(i, odd)
			return true
		case table.EmptyKey:
			// Claim order matters: take the version lock FIRST, then
			// publish the key, so a reader that sees the key either sees an
			// odd version (waits) or sees the completed value. Key words
			// only change under the version lock, which makes the re-check
			// below sound.
			cur := t.versions[i].Load()
			if cur&1 == 1 || !t.versions[i].CompareAndSwap(cur, cur+1) {
				// A writer is mid-flight on this slot; re-inspect it.
				runtime.Gosched()
				continue
			}
			if t.keyAt(i) != table.EmptyKey {
				// Someone claimed this slot before we locked; release the
				// lock untouched and re-inspect.
				t.versions[i].Store(cur + 2)
				continue
			}
			t.storeVal(i, value)
			atomic.StoreUint64(&t.keys[i], key)
			t.versions[i].Store(cur + 2)
			t.live.Add(1)
			return true
		}
		i++
		if i == t.size {
			i = 0
		}
	}
	return false
}

// Get copies the value for key into dst (length ValueSize) and reports
// presence. The read is atomic with respect to concurrent Puts: the version
// is compared before and after the copy and the copy retried on change.
func (t *BigTable) Get(key uint64, dst []byte) bool {
	if len(dst) != t.vsize {
		panic("dramhit: BigTable.Get dst size mismatch")
	}
	i := hashfn.Fastrange(t.hash(key), t.size)
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.keyAt(i); k {
		case key:
			for spins := 0; ; spins++ {
				before := t.versions[i].Load()
				if before&1 == 1 {
					// In-progress update; wait for it to land.
					if spins > 64 {
						runtime.Gosched()
					}
					continue
				}
				t.loadVal(i, dst)
				if t.versions[i].Load() == before {
					return true
				}
				// Changed under us: retry the copy.
			}
		case table.EmptyKey:
			return false
		}
		i++
		if i == t.size {
			i = 0
		}
	}
	return false
}

// Delete tombstones the key.
func (t *BigTable) Delete(key uint64) bool {
	i := hashfn.Fastrange(t.hash(key), t.size)
	for probes := uint64(0); probes < t.size; probes++ {
		switch k := t.keyAt(i); k {
		case key:
			if atomic.CompareAndSwapUint64(&t.keys[i], key, table.TombstoneKey) {
				t.live.Add(-1)
				return true
			}
			return false
		case table.EmptyKey:
			return false
		}
		i++
		if i == t.size {
			i = 0
		}
	}
	return false
}
