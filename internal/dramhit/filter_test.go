package dramhit

import (
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/hashfn"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// filterPair drives two SWAR tables — one per probe filter — through the
// same request stream with the same flush boundaries and asserts
// bit-identical behaviour: every response (order included; the tag gate
// preserves the traversal, so reprobe re-enqueue patterns and hence
// completion order must match) and the core Stats counters. On top of the
// core equality it pins the filter's accounting identity: every line visit
// is either tag-skipped or key-loaded, so KeyLines(tags) + TagSkips(tags)
// must equal KeyLines(none).
type filterPair struct {
	t            *testing.T
	none, tags   *Handle
	rNone, rTags []table.Response
	nNone, nTags int
	noneT, tagsT *Table
}

func newFilterPair(t *testing.T, slots uint64, window, respCap int) *filterPair {
	tn := New(Config{Slots: slots, PrefetchWindow: window, ProbeFilter: table.FilterNone})
	tt := New(Config{Slots: slots, PrefetchWindow: window, ProbeFilter: table.FilterTags})
	return &filterPair{
		t:     t,
		noneT: tn,
		tagsT: tt,
		none:  tn.NewHandle(),
		tags:  tt.NewHandle(),
		rNone: make([]table.Response, respCap),
		rTags: make([]table.Response, respCap),
	}
}

func (fp *filterPair) compare(what string) {
	fp.t.Helper()
	if fp.nNone != fp.nTags {
		fp.t.Fatalf("%s: none wrote %d responses, tags %d", what, fp.nNone, fp.nTags)
	}
	for i := 0; i < fp.nNone; i++ {
		if fp.rNone[i] != fp.rTags[i] {
			fp.t.Fatalf("%s: response %d diverged: none %+v tags %+v", what, i, fp.rNone[i], fp.rTags[i])
		}
	}
	fp.nNone, fp.nTags = 0, 0
	sn, st := fp.none.Stats(), fp.tags.Stats()
	if sn.Core() != st.Core() {
		fp.t.Fatalf("%s: core stats diverged:\nnone %+v\ntags %+v", what, sn, st)
	}
	if sn.TagSkips != 0 || sn.TagHits != 0 || sn.TagFalse != 0 {
		fp.t.Fatalf("%s: none mode counted tag events: %+v", what, sn)
	}
	if st.KeyLines+st.TagSkips != sn.KeyLines {
		fp.t.Fatalf("%s: visit accounting broken: tags KeyLines %d + TagSkips %d != none KeyLines %d",
			what, st.KeyLines, st.TagSkips, sn.KeyLines)
	}
	if st.TagHits+st.TagFalse > st.KeyLines {
		fp.t.Fatalf("%s: admitted-line outcomes %d+%d exceed KeyLines %d",
			what, st.TagHits, st.TagFalse, st.KeyLines)
	}
}

func (fp *filterPair) submit(reqs []table.Request) {
	fp.t.Helper()
	remN, remT := reqs, reqs
	for len(remN) > 0 || len(remT) > 0 {
		if len(remN) > 0 {
			n, nr := fp.none.Submit(remN, fp.rNone[fp.nNone:])
			remN = remN[n:]
			fp.nNone += nr
		}
		if len(remT) > 0 {
			n, nr := fp.tags.Submit(remT, fp.rTags[fp.nTags:])
			remT = remT[n:]
			fp.nTags += nr
		}
	}
}

func (fp *filterPair) flush() {
	fp.t.Helper()
	for {
		n, done := fp.none.Flush(fp.rNone[fp.nNone:])
		fp.nNone += n
		if done {
			break
		}
	}
	for {
		n, done := fp.tags.Flush(fp.rTags[fp.nTags:])
		fp.nTags += n
		if done {
			break
		}
	}
}

// TestFilterEquivalenceProperty is the tags-vs-none property test: over
// randomized mixed workloads — all four ops, reserved keys, dense
// collisions, tombstone churn, wrap-around sizes, single-line tables and
// table-full failures — the two filters must produce identical responses in
// identical order and identical core Stats, while the filter counters obey
// the per-visit accounting identity.
func TestFilterEquivalenceProperty(t *testing.T) {
	sizes := []uint64{3, 4, 5, 16, 37, 251, 1024}
	windows := []int{1, 4, 16}
	for _, size := range sizes {
		for _, window := range windows {
			rng := rand.New(rand.NewSource(int64(size)*61 + int64(window)))
			keyRange := int(size) * 2
			var batch []table.Request
			var nextID uint64
			ops := 4000
			if size >= 1024 {
				ops = 20000
			}
			fp := newFilterPair(t, size, window, ops+64)
			for i := 0; i < ops; i++ {
				var k uint64
				switch rng.Intn(20) {
				case 0:
					k = table.EmptyKey
				case 1:
					k = table.TombstoneKey
				default:
					k = uint64(rng.Intn(keyRange)) + 1
				}
				op := table.Op(rng.Intn(4))
				id := nextID
				nextID++
				batch = append(batch, table.Request{Op: op, Key: k, Value: uint64(rng.Intn(1 << 16)), ID: id})
				if len(batch) >= 1+rng.Intn(32) {
					fp.submit(batch)
					batch = batch[:0]
					if rng.Intn(4) == 0 {
						fp.flush()
						fp.compare("mid-run")
					}
				}
			}
			fp.submit(batch)
			fp.flush()
			fp.compare("final")
			if fp.noneT.Len() != fp.tagsT.Len() {
				t.Fatalf("size %d window %d: Len diverged: none %d tags %d",
					size, window, fp.noneT.Len(), fp.tagsT.Len())
			}
		}
	}
}

// TestFilterEquivalenceTableScan cross-checks final placement: after an
// identical deterministic workload the two filters must have claimed the
// same slots with the same keys, and every live slot of the tagged table
// must carry its key's published fingerprint.
func TestFilterEquivalenceTableScan(t *testing.T) {
	fp := newFilterPair(t, 512, 8, 30064)
	rng := rand.New(rand.NewSource(77))
	var batch []table.Request
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(700)) + 1
		batch = append(batch, table.Request{Op: table.Op(rng.Intn(4)), Key: k, Value: 7, ID: uint64(i)})
		if len(batch) == 24 {
			fp.submit(batch)
			batch = batch[:0]
		}
	}
	fp.submit(batch)
	fp.flush()
	fp.compare("scan")
	for i := uint64(0); i < 512; i++ {
		kn, kt := fp.noneT.arr.Key(i), fp.tagsT.arr.Key(i)
		if kn != kt {
			t.Fatalf("slot %d: none key %#x, tags key %#x", i, kn, kt)
		}
		if kt != table.EmptyKey && kt != table.TombstoneKey {
			if got, want := fp.tagsT.arr.Tag(i), table.TagOf(hashfn.City64(kt)); got != want {
				t.Fatalf("slot %d key %d: tag %d, want %d", i, kt, got, want)
			}
		}
	}
}

// TestFilterClaimRaces hammers the tag-gated claim path under -race: many
// handles race Upserts over a hot key set on a FilterTags table. The
// must-check-zero rule has to carry requests through the claim→publish
// window — a dropped upsert (false negative) would show up as a short
// count, a double claim as a duplicate slot.
func TestFilterClaimRaces(t *testing.T) {
	tbl := New(Config{Slots: 4096, ProbeFilter: table.FilterTags})
	keys := workload.UniqueKeys(8, 64)
	const goroutines = 8
	const rounds = 150
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tbl.NewHandle()
			for r := 0; r < rounds; r++ {
				h.UpsertBatch(keys, 1)
			}
		}()
	}
	wg.Wait()

	s := tbl.NewSync()
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v != goroutines*rounds {
			t.Fatalf("key %d: count (%d, %v), want %d", k, v, ok, goroutines*rounds)
		}
	}
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < uint64(tbl.Cap()); i++ {
		k := tbl.arr.Key(i)
		if k == table.EmptyKey || k == table.TombstoneKey {
			continue
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("key %d claimed in slots %d and %d", k, prev, i)
		}
		seen[k] = i
		if got, want := tbl.arr.Tag(i), table.TagOf(hashfn.City64(k)); got != want {
			t.Fatalf("slot %d key %d: tag %d, want %d", i, k, got, want)
		}
	}
	if len(seen) != len(keys) {
		t.Fatalf("table holds %d live keys, want %d", len(seen), len(keys))
	}
}

// TestFilterMixedOpRaces races all four ops across handles on one
// FilterTags table and on a FilterNone table fed the same per-goroutine
// streams; both must uphold the structural invariants whatever
// interleaving the scheduler picks (responses are not comparable across
// interleavings, so the assertions are invariant-based).
func TestFilterMixedOpRaces(t *testing.T) {
	for _, filter := range []table.ProbeFilter{table.FilterTags, table.FilterNone} {
		tbl := New(Config{Slots: 1 << 12, ProbeFilter: filter})
		keys := workload.UniqueKeys(9, 256)
		const goroutines = 6
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				h := tbl.NewHandle()
				rng := rand.New(rand.NewSource(int64(g)))
				reqs := make([]table.Request, 16)
				resps := make([]table.Response, 64)
				for r := 0; r < 500; r++ {
					for j := range reqs {
						reqs[j] = table.Request{
							Op:    table.Op(rng.Intn(4)),
							Key:   keys[rng.Intn(len(keys))],
							Value: 1,
							ID:    uint64(j),
						}
					}
					rem := reqs[:]
					for len(rem) > 0 {
						n, _ := h.Submit(rem, resps)
						rem = rem[n:]
					}
				}
				for {
					if _, done := h.Flush(resps); done {
						break
					}
				}
			}(g)
		}
		wg.Wait()

		live := 0
		seen := make(map[uint64]bool)
		for i := uint64(0); i < uint64(tbl.Cap()); i++ {
			k := tbl.arr.Key(i)
			if k == table.EmptyKey || k == table.TombstoneKey {
				continue
			}
			if seen[k] {
				t.Fatalf("filter %v: key %d claimed twice", filter, k)
			}
			seen[k] = true
			live++
		}
		if got := int(tbl.live.Load()); got != live {
			t.Fatalf("filter %v: live counter %d, scan found %d", filter, got, live)
		}
	}
}

// TestFilterSkipsNegativeLookups pins the headline win: on a table at
// moderate fill probed with keys that were never inserted, the tag filter
// must reject most probe-chain lines without loading them — TagSkips
// dominates and KeyLines collapses versus the unfiltered run.
func TestFilterSkipsNegativeLookups(t *testing.T) {
	const slots = 1 << 12
	fp := newFilterPair(t, slots, 16, 4096)
	present := workload.UniqueKeys(3, slots*3/4)
	vals := make([]uint64, len(present))
	for i := range vals {
		vals[i] = 1
	}
	fp.tags.PutBatch(present, vals)
	fp.none.PutBatch(present, vals)
	fp.flush()
	fp.nNone, fp.nTags = 0, 0

	// Reset counters by reading a baseline, then probe absent keys.
	baseNone, baseTags := fp.none.Stats(), fp.tags.Stats()
	absent := workload.MissKeys(3, slots*3/4, 4096)
	var batch []table.Request
	for i, k := range absent {
		batch = append(batch, table.Request{Op: table.Get, Key: k, ID: uint64(i)})
	}
	fp.submit(batch)
	fp.flush()
	fp.compare("negative lookups")

	sn := fp.none.Stats()
	st := fp.tags.Stats()
	if hits := st.Hits - baseTags.Hits; hits != 0 {
		t.Fatalf("absent keys produced %d hits", hits)
	}
	keyLinesNone := sn.KeyLines - baseNone.KeyLines
	keyLinesTags := st.KeyLines - baseTags.KeyLines
	skips := st.TagSkips - baseTags.TagSkips
	if skips == 0 {
		t.Fatal("negative lookups produced no tag skips")
	}
	if keyLinesTags*2 >= keyLinesNone {
		t.Fatalf("filter saved too little: tags loaded %d key lines, none %d (skips %d)",
			keyLinesTags, keyLinesNone, skips)
	}
}

// TestFilterConfigWiring pins the Config contract: tags is the default,
// scalar kernels are forced to none, and the effective filter is exposed.
func TestFilterConfigWiring(t *testing.T) {
	if def := New(Config{Slots: 16}); def.Filter() != table.FilterTags {
		t.Fatalf("default Filter() = %v, want tags", def.Filter())
	}
	if n := New(Config{Slots: 16, ProbeFilter: table.FilterNone}); n.Filter() != table.FilterNone {
		t.Fatalf("explicit none: Filter() = %v", n.Filter())
	}
	sc := New(Config{Slots: 16, ProbeKernel: table.KernelScalar, ProbeFilter: table.FilterTags})
	if sc.Filter() != table.FilterNone {
		t.Fatalf("scalar kernel: Filter() = %v, want forced none", sc.Filter())
	}
	if sc.arr.HasTags() {
		t.Fatal("scalar table allocated a tag sidecar")
	}
	if !New(Config{Slots: 16}).arr.HasTags() {
		t.Fatal("tags table missing its sidecar")
	}
}
