package dramhit

import (
	"math/bits"
	"time"

	"dramhit/internal/obs"
	"dramhit/internal/simd"
	"dramhit/internal/table"
)

// This file is the in-window request-combining stage (Config.Combining):
// Submit merges a request whose key already has a pending request in the
// handle's prefetch queue instead of enqueueing it. The headline workloads
// are exactly the ones where keys recur within a window — k-mer counting is
// upsert-dominated with massive repetition, and zipfian request streams
// concentrate on a few hot keys — yet the uncombined pipeline pays a
// prefetch, a probe and an atomic per duplicate on the same cache line.
//
// Detection is an 8-wide SWAR scan of the ring's tag-fingerprint bytes
// (ptags) followed by a key confirm on the matched slots; the window is at
// most 64 entries, so no map is needed and the scan stays in two or three
// cache-hot words. Merging rules:
//
//   - Upsert onto a pending Upsert folds the increment into the pending
//     request's value and completes immediately (the fold IS the op).
//   - Get onto a pending Get piggybacks: one probe result fans out to N
//     responses, each carrying its own request ID.
//   - Get onto a pending Put/Upsert is answered by store-to-load forwarding
//     from the in-flight value when the write completes.
//   - Delete never combines in either direction: it is a combine barrier
//     for its key, so deletions keep their exact uncombined semantics.
//
// A merged request issues no prefetch, loads no key line and attempts no
// CAS — zero additional memory transactions — which is what the combine-ab
// experiment measures via KeyLines+CASAttempts per op.

// Leader resolution states. A pending is stateProbing until its probe
// resolves; a leader whose combined-Get chain could not be fully emitted
// (response buffer filled) parks at the queue head in stateHit/stateMiss
// with its resolved value in rval, and processOldest resumes the emission.
const (
	stateProbing = iota
	stateHit
	stateMiss
)

// maxCombinedGets bounds one leader's chain. A same-key Get burst never
// fills the window (merging doesn't grow the queue), so without a bound the
// chain — and the response debt it parks at the queue head — would grow
// with the burst. At the cap the next Get enqueues as a fresh leader, which
// the scan then finds as the newest match for the burst's remainder.
const maxCombinedGets = 64

// mergedGet is a Get absorbed by a pending leader, awaiting the leader's
// probe result. Entries live in Handle.merged and are linked through next
// with a 1+index encoding (0 terminates); free entries are recycled through
// Handle.mfree, so the steady-state hot path allocates nothing.
type mergedGet struct {
	req     table.Request
	startNS int64
	next    int32
}

// combineScan returns the queue position of the newest pending request for
// key, or -1. Position, not slot: the ring reuses slots, and the byte
// sidecar is never cleared at dequeue, so a matched slot s is validated by
// reconstructing the one position in [tail, tail+cap) that maps to it —
// pos is live iff pos < head, and a live position's enqueue was the last
// write of both q[s] and its tag byte, so the match is against current
// contents. Stale bytes past capacity (rings narrower than 8 slots) never
// match because they stay zero and published tags are 1..255.
// Only the words covering live positions [tail, head) are scanned — for the
// default window that is at most ceil(window/8)+1 of the ring's words — and
// the caller's tagcnt gate means the scan runs only when some live slot
// shares the tag byte. Words are walked newest-first: the queue is never
// full, so each word's live positions are consecutive and every word holds
// strictly newer positions than the words behind it, which lets the scan
// return at the first word with a key-confirmed match — under skew the
// duplicate was just enqueued, so the hot case touches one word.
func (h *Handle) combineScan(key uint64, tag uint8) int {
	nw := len(h.ptags)
	s0 := h.tail & h.mask
	wc := ((s0 & 7) + h.head - h.tail + 7) >> 3
	if wc > nw {
		wc = nw
	}
	for i := wc - 1; i >= 0; i-- {
		w := (s0>>3 + i) & (nw - 1)
		m := simd.MatchBytes8(h.ptags[w], tag)
		best := -1
		for m != 0 {
			s := w*8 + bits.TrailingZeros8(m)
			m &= m - 1
			pos := h.tail + ((s - h.tail) & h.mask)
			if pos < h.head && pos > best && h.q[s].req.Key == key {
				best = pos
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// tryCombine merges req into the pending leader at queue position pos.
// A false return means the caller must enqueue normally: the leader is a
// Delete (the barrier), the op pair doesn't combine, the leader already
// resolved (parked mid-emission), or its chain is at capacity.
func (h *Handle) tryCombine(req table.Request, pos int) bool {
	lead := &h.q[pos&h.mask]
	if lead.state != stateProbing || lead.req.Op == table.Delete {
		return false
	}
	switch req.Op {
	case table.Upsert:
		if lead.req.Op != table.Upsert {
			return false
		}
		// Folding is the whole operation: the leader's one AddValue will
		// apply the combined sum, so this request is already as complete as
		// the uncombined pipeline would ever make it.
		lead.req.Value += req.Value
		h.stats.CombinedUpserts++
		if lead.trace != 0 {
			h.trace.Record(lead.trace, obs.EvCombine, uint8(req.Op), req.Key, uint32(lead.ngets))
		}
		fp := pending{req: req}
		if h.onComplete != nil {
			fp.startNS = time.Now().UnixNano()
		}
		h.finish(fp, table.Upsert, true)
		return true
	case table.Get:
		if lead.ngets >= maxCombinedGets {
			return false
		}
		switch lead.req.Op {
		case table.Get:
			h.stats.PiggybackedGets++
		case table.Put, table.Upsert:
			h.stats.ForwardedGets++
		default:
			return false
		}
		n := mergedGet{req: req, next: lead.chain}
		if h.onComplete != nil {
			n.startNS = time.Now().UnixNano()
		}
		idx := h.allocMerged()
		h.merged[idx] = n
		lead.chain = idx + 1
		lead.ngets++
		if lead.trace != 0 {
			h.trace.Record(lead.trace, obs.EvCombine, uint8(req.Op), req.Key, uint32(lead.ngets))
		}
		return true
	}
	// Put never combines: overwrite-after-overwrite already costs one store
	// either way, and keeping Puts literal keeps last-writer semantics
	// exactly those of the uncombined pipeline.
	return false
}

// allocMerged returns a free arena index, recycling before growing.
func (h *Handle) allocMerged() int32 {
	if h.mfree != 0 {
		i := h.mfree - 1
		h.mfree = h.merged[i].next
		return i
	}
	h.merged = append(h.merged, mergedGet{})
	return int32(len(h.merged) - 1)
}

// emitChain pops combined Gets off p's chain while resps has room, giving
// each its own response built from the leader's one probe result. Reports
// whether the chain fully drained; a false return leaves the remainder
// linked for a parked resume.
func (h *Handle) emitChain(p *pending, v uint64, found bool, resps []table.Response, nresp *int) bool {
	for p.chain != 0 {
		if *nresp >= len(resps) {
			return false
		}
		i := p.chain - 1
		n := h.merged[i]
		h.merged[i].next = h.mfree
		h.mfree = p.chain
		p.chain = n.next
		p.ngets--
		resps[*nresp] = table.Response{ID: n.req.ID, Value: v, Found: found}
		*nresp++
		h.finish(pending{req: n.req, startNS: n.startNS}, table.Get, found)
	}
	return true
}

// retire completes the leader p, resolved with value v and hit status
// found (fail additionally marks a table-full Put/Upsert), then emits its
// combined chain. The caller must have verified response space when op is
// Get and must not have advanced h.tail: retire advances it, or — when the
// chain outlives the response buffer — parks the resolved leader at the
// queue head for processOldest to resume. A parked slot's ptag byte is
// cleared so no new request can combine onto an already-resolved probe.
func (h *Handle) retire(p pending, op table.Op, v uint64, found, fail bool, resps []table.Response, nresp *int) (wrote, blocked bool) {
	if op == table.Get {
		resps[*nresp] = table.Response{ID: p.req.ID, Value: v, Found: found}
		*nresp++
	}
	if fail {
		h.stats.Failed++
	}
	if h.obsw != nil && p.ngets != 0 {
		h.obsw.MaxGauge(obs.GChainMax, uint64(p.ngets))
	}
	h.finish(p, op, found)
	if p.chain == 0 || h.emitChain(&p, v, found, resps, nresp) {
		h.pop()
		return true, false
	}
	if found {
		p.state = stateHit
	} else {
		p.state = stateMiss
	}
	if h.obsw != nil {
		// Backpressure park: the chain outlived the response buffer and the
		// resolved leader freezes the queue head until the caller drains.
		h.obsw.Inc(obs.CParks)
	}
	p.rval = v
	s := h.tail & h.mask
	h.tagcnt[p.tag]-- // released here, not at the eventual pop (byte now 0)
	h.ptags[s>>3] &^= 0xff << (uint(s&7) * 8)
	h.q[s] = p
	return false, true
}
