package dramhit

import (
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// The Layer-1 (real execution) benchmarks measure the Go implementation on
// the host machine. Absolute numbers reflect the Go runtime and core count,
// not the paper's testbed; cross-design ratios on one host are the
// interesting signal. The paper's figures are reproduced by the simulated
// benchmarks in the repository root (bench_test.go).

func BenchmarkPutBatchPipelined(b *testing.B) {
	tbl := New(Config{Slots: uint64(b.N)*2 + 4096})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(1, b.N)
	vals := make([]uint64, b.N)
	b.ResetTimer()
	h.PutBatch(keys, vals)
}

func BenchmarkGetBatchPipelined(b *testing.B) {
	const size = 1 << 20
	tbl := New(Config{Slots: size})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(2, size*3/4)
	vals := make([]uint64, len(keys))
	h.PutBatch(keys, vals)
	found := make([]bool, len(keys))
	b.ResetTimer()
	for done := 0; done < b.N; done += len(keys) {
		n := len(keys)
		if b.N-done < n {
			n = b.N - done
		}
		h.GetBatch(keys[:n], vals[:n], found[:n])
	}
}

func BenchmarkGetSyncAdapter(b *testing.B) {
	// The same lookups without the pipeline (window still fills but each
	// op flushes): quantifies what the batched interface buys on this host.
	const size = 1 << 20
	tbl := New(Config{Slots: size})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(3, size*3/4)
	vals := make([]uint64, len(keys))
	h.PutBatch(keys, vals)
	s := tbl.NewSync()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(keys[i%len(keys)])
	}
}

func BenchmarkUpsertBatch(b *testing.B) {
	const size = 1 << 18
	tbl := New(Config{Slots: size})
	h := tbl.NewHandle()
	keys := workload.UniqueKeys(4, size/2)
	b.ResetTimer()
	for done := 0; done < b.N; done += len(keys) {
		n := len(keys)
		if b.N-done < n {
			n = b.N - done
		}
		h.UpsertBatch(keys[:n], 1)
	}
}

func BenchmarkWindowSweep(b *testing.B) {
	// Ablation on real hardware: issuing a window of independent loads
	// back-to-back exploits the CPU's memory-level parallelism even from
	// Go; deeper windows overlap more misses.
	const size = 1 << 22 // 64 MB of slots: larger than typical LLC
	keys := workload.UniqueKeys(5, size/2)
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	for _, w := range []int{1, 4, 16, 32} {
		b.Run(byWindow(w), func(b *testing.B) {
			tbl := New(Config{Slots: size, PrefetchWindow: w})
			h := tbl.NewHandle()
			h.PutBatch(keys, vals)
			b.ResetTimer()
			for done := 0; done < b.N; done += len(keys) {
				n := len(keys)
				if b.N-done < n {
					n = b.N - done
				}
				h.GetBatch(keys[:n], vals[:n], found[:n])
			}
		})
	}
}

func byWindow(w int) string {
	return "window" + string(rune('0'+w/10)) + string(rune('0'+w%10))
}

// BenchmarkProbeKernel is the scalar-vs-SWAR A/B: the same 75%-fill
// pipelined workload under each Config.ProbeKernel, for Gets (the paper's
// headline op) and an insert-heavy mix. Fixed seeds keep the runs
// benchstat-comparable; results/kernel-ab.txt archives a capture.
func BenchmarkProbeKernel(b *testing.B) {
	const size = 1 << 20
	kernels := []table.ProbeKernel{table.KernelScalar, table.KernelSWAR}
	for _, k := range kernels {
		b.Run(k.String()+"/get75", func(b *testing.B) {
			tbl := New(Config{Slots: size, ProbeKernel: k})
			h := tbl.NewHandle()
			keys := workload.UniqueKeys(11, size*3/4)
			vals := make([]uint64, len(keys))
			h.PutBatch(keys, vals)
			found := make([]bool, len(keys))
			b.ResetTimer()
			for done := 0; done < b.N; done += len(keys) {
				n := len(keys)
				if b.N-done < n {
					n = b.N - done
				}
				h.GetBatch(keys[:n], vals[:n], found[:n])
			}
		})
	}
	for _, k := range kernels {
		b.Run(k.String()+"/put75", func(b *testing.B) {
			// Timed region: inserting the 50%→75% fill band of a prefilled
			// table, the regime where probe chains actually form. Filling
			// from empty would mostly measure home-slot inserts, which both
			// kernels resolve with the same single load.
			keys := workload.UniqueKeys(12, size*3/4)
			prefill, grow := keys[:size/2], keys[size/2:]
			vals := make([]uint64, len(keys))
			b.ResetTimer()
			for done := 0; done < b.N; done += len(grow) {
				b.StopTimer()
				tbl := New(Config{Slots: size, ProbeKernel: k})
				h := tbl.NewHandle()
				h.PutBatch(prefill, vals[:len(prefill)])
				b.StartTimer()
				n := len(grow)
				if b.N-done < n {
					n = b.N - done
				}
				h.PutBatch(grow[:n], vals[:n])
			}
		})
	}
	for _, k := range kernels {
		b.Run(k.String()+"/upsert75", func(b *testing.B) {
			tbl := New(Config{Slots: size, ProbeKernel: k})
			h := tbl.NewHandle()
			keys := workload.UniqueKeys(13, size*3/4)
			h.UpsertBatch(keys, 1) // preload: steady state is all-hits
			b.ResetTimer()
			for done := 0; done < b.N; done += len(keys) {
				n := len(keys)
				if b.N-done < n {
					n = b.N - done
				}
				h.UpsertBatch(keys[:n], 1)
			}
		})
	}
}

// BenchmarkProbeFilter is the tags-vs-none A/B behind results/tags-ab.txt:
// the same SWAR pipeline with and without the packed tag sidecar, on the two
// workloads where the filter's effect brackets reality. Negative lookups at
// 75% fill are the best case (nearly every probed line is rejected from the
// tag word alone); positive lookups at 85% fill are the adversarial case
// (every probe ends in a real key hit, so the filter can only save the
// cluster-walk interior lines and must pay its tag-word load on the rest).
// Fixed seeds keep runs benchstat-comparable.
func BenchmarkProbeFilter(b *testing.B) {
	const size = 1 << 20
	filters := []table.ProbeFilter{table.FilterNone, table.FilterTags}
	for _, f := range filters {
		b.Run(f.String()+"/miss75", func(b *testing.B) {
			tbl := New(Config{Slots: size, ProbeFilter: f})
			h := tbl.NewHandle()
			fill := workload.UniqueKeys(21, size*3/4)
			vals := make([]uint64, len(fill))
			h.PutBatch(fill, vals)
			miss := workload.MissKeys(21, len(fill), len(fill))
			found := make([]bool, len(miss))
			base := h.Stats()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(miss) {
				n := len(miss)
				if b.N-done < n {
					n = b.N - done
				}
				h.GetBatch(miss[:n], vals[:n], found[:n])
			}
			b.StopTimer()
			reportFilterStats(b, h, base)
		})
	}
	for _, f := range filters {
		b.Run(f.String()+"/get85", func(b *testing.B) {
			tbl := New(Config{Slots: size, ProbeFilter: f})
			h := tbl.NewHandle()
			keys := workload.UniqueKeys(22, size*17/20)
			vals := make([]uint64, len(keys))
			h.PutBatch(keys, vals)
			found := make([]bool, len(keys))
			base := h.Stats()
			b.ResetTimer()
			for done := 0; done < b.N; done += len(keys) {
				n := len(keys)
				if b.N-done < n {
					n = b.N - done
				}
				h.GetBatch(keys[:n], vals[:n], found[:n])
			}
			b.StopTimer()
			reportFilterStats(b, h, base)
		})
	}
}

// reportFilterStats turns the handle's filter counters — the timed region's
// delta over the setup-phase snapshot — into benchmark metrics so the A/B
// capture shows per-op key-line loads, not just ns/op.
func reportFilterStats(b *testing.B, h *Handle, base Stats) {
	s := h.Stats()
	n := float64(b.N)
	keyLines := s.KeyLines - base.KeyLines
	tagSkips := s.TagSkips - base.TagSkips
	b.ReportMetric(float64(keyLines)/n, "keylines/op")
	b.ReportMetric(float64(tagSkips)/n, "tagskips/op")
	if tagSkips > 0 && keyLines > 0 {
		b.ReportMetric(float64(s.TagFalse-base.TagFalse)/float64(keyLines), "falsepos/keyline")
	}
}

func BenchmarkBigTablePutGet(b *testing.B) {
	bt := NewBigTable(1<<16, 32)
	keys := workload.UniqueKeys(6, 1<<15)
	v := make([]byte, 32)
	out := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		bt.Put(k, v)
		bt.Get(k, out)
	}
}

func BenchmarkMixedPipeline(b *testing.B) {
	tbl := New(Config{Slots: 1 << 18})
	h := tbl.NewHandle()
	ms := workload.NewMixedStream(7, 1<<16, 0.9, 0.8)
	reqs := make([]table.Request, 16)
	resps := make([]table.Response, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(reqs) {
		for j := range reqs {
			op := ms.Next()
			kind := table.Put
			if op.Op == workload.Get {
				kind = table.Get
			}
			reqs[j] = table.Request{Op: kind, Key: op.Key, Value: 1, ID: uint64(j)}
		}
		rem := reqs[:]
		for len(rem) > 0 {
			nreq, _ := h.Submit(rem, resps)
			rem = rem[nreq:]
		}
	}
	h.Flush(resps)
}
