// Package table defines the types shared by every hash-table implementation
// in this repository: operation codes, the batched asynchronous
// request/response records of the DRAMHiT interface (§3.1 of the paper), and
// the reserved key values used by the open-addressing layout.
package table

import "fmt"

// Op identifies a hash-table operation.
type Op uint8

// Supported operations (paper §3 "Operations").
const (
	// Get looks up a key and produces a response.
	Get Op = iota
	// Put inserts a key/value pair, silently overwriting an existing value.
	Put
	// Upsert inserts the value if the key is absent, otherwise atomically
	// adds the request value to the stored value (the k-mer counting
	// primitive).
	Upsert
	// Delete marks the key's slot as a tombstone. The slot is not freed;
	// space is reclaimed only on resize, exactly as in the paper.
	Delete
)

// String implements fmt.Stringer for diagnostics.
func (o Op) String() string {
	switch o {
	case Get:
		return "get"
	case Put:
		return "put"
	case Upsert:
		return "upsert"
	case Delete:
		return "delete"
	}
	return "invalid"
}

// Request is one element of a submitted batch. ID is an opaque caller-chosen
// identifier returned with the response so that out-of-order completions can
// be matched to their requests (paper §3.1 "Asynchronous interface").
type Request struct {
	Op    Op
	Key   uint64
	Value uint64
	ID    uint64
}

// Response is one element of a completed batch.
type Response struct {
	// ID echoes the request identifier.
	ID uint64
	// Value is the value found (Get) or the value after update (Upsert).
	Value uint64
	// Found reports whether the key was present (Get/Delete) or whether an
	// Upsert updated an existing entry rather than inserting.
	Found bool
}

// Reserved key values. The tables use three values from the key space to
// mark empty, deleted, and migrated slots; clients may still store these
// keys — the tables transparently redirect them to dedicated side slots
// (paper §3 "Atomicity": "To restore the key space, we use two dedicated
// memory locations"; the third, MovedKey, is this repository's addition for
// growt's incremental migration).
const (
	EmptyKey     uint64 = 0
	TombstoneKey uint64 = ^uint64(0)
	// MovedKey marks an old-generation slot whose entry has been migrated to
	// the successor table during an incremental resize (internal/growt).
	// Like TombstoneKey it is a terminal key-word state: a slot transitions
	// key → MovedKey exactly once and is never reused, so the unsynchronized
	// read path stays linearizable through a migration window.
	MovedKey uint64 = ^uint64(0) - 1
)

// IsReservedKey reports whether key is one of the three reserved key values
// that probe loops treat specially and side slots absorb for clients.
func IsReservedKey(key uint64) bool {
	return key == EmptyKey || key == TombstoneKey || key == MovedKey
}

// ProbeKernel selects how the live tables probe a cache-resident line. The
// zero value is KernelSWAR, making the line-granular kernel the default
// execution model; the scalar loop stays selectable for ablation and A/B
// benchmarks (the Figure 7-style comparisons).
type ProbeKernel uint8

const (
	// KernelSWAR probes a whole 64-byte line per step: the four key lanes
	// are snapshotted in one pass and compared lane-parallel with the
	// branch-free kernel of internal/simd (paper §3.4, Listing 1).
	KernelSWAR ProbeKernel = iota
	// KernelScalar probes slot-by-slot with one atomic load and a key
	// switch per slot — the pre-SWAR hot path, kept as the A/B baseline.
	KernelScalar
)

// String implements fmt.Stringer for benchmark labels.
func (k ProbeKernel) String() string {
	switch k {
	case KernelSWAR:
		return "swar"
	case KernelScalar:
		return "scalar"
	}
	return "invalid"
}

// ParseProbeKernel maps a benchmark-flag string back to a kernel.
func ParseProbeKernel(s string) (ProbeKernel, error) {
	switch s {
	case "", "swar":
		return KernelSWAR, nil
	case "scalar":
		return KernelScalar, nil
	}
	return 0, fmt.Errorf("unknown probe kernel %q (want swar|scalar)", s)
}

// ProbeFilter selects whether the SWAR probe loops consult the packed
// tag-fingerprint sidecar before loading a cache line's key lanes. The zero
// value is FilterTags, making the filter the default execution model; the
// unfiltered probe stays selectable for ablation and A/B benchmarks. Tags
// are a pure accelerator: both settings return bit-identical responses, the
// filter only skips key-line loads that provably cannot match.
type ProbeFilter uint8

const (
	// FilterTags consults one packed tag word (8 slots — two data cache
	// lines) per probed line and skips lines with no candidate lanes.
	FilterTags ProbeFilter = iota
	// FilterNone probes key lanes unconditionally (the pre-filter hot
	// path, kept as the A/B baseline). Also what scalar-kernel tables run:
	// the filter is line-granular, so it accelerates only KernelSWAR.
	FilterNone
)

// String implements fmt.Stringer for benchmark labels.
func (f ProbeFilter) String() string {
	switch f {
	case FilterTags:
		return "tags"
	case FilterNone:
		return "none"
	}
	return "invalid"
}

// ParseProbeFilter maps a benchmark-flag string back to a filter setting.
func ParseProbeFilter(s string) (ProbeFilter, error) {
	switch s {
	case "", "tags":
		return FilterTags, nil
	case "none":
		return FilterNone, nil
	}
	return 0, fmt.Errorf("unknown probe filter %q (want tags|none)", s)
}

// Layout selects the physical slot layout of a table. The zero value is
// LayoutFlat — the original interleaved key/value array with its optional
// tag sidecar — so existing configurations are bit-identical. LayoutBucket
// switches to the one-line bucket layout: 64-byte buckets whose first word
// is in-cell metadata (7 fingerprint bytes + a publish bitmap) over 7 slot
// words referencing a log-structured arena, which both removes the
// sidecar's extra line load on positive lookups and unlocks variable-length
// []byte keys and values (the GetBytes/PutBytes API).
type Layout uint8

const (
	// LayoutFlat is the interleaved uint64 key/value array (slotarr.Array).
	LayoutFlat Layout = iota
	// LayoutBucket is the bucketized cell-metadata layout over the KV arena
	// (slotarr.BucketTable).
	LayoutBucket
)

// String implements fmt.Stringer for benchmark labels.
func (l Layout) String() string {
	switch l {
	case LayoutFlat:
		return "flat"
	case LayoutBucket:
		return "bucket"
	}
	return "invalid"
}

// ParseLayout maps a benchmark-flag string back to a layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "flat":
		return LayoutFlat, nil
	case "bucket":
		return LayoutBucket, nil
	}
	return 0, fmt.Errorf("unknown layout %q (want flat|bucket)", s)
}

// Combining selects whether a handle's Submit merges a request whose key
// already has a pending request in the prefetch queue instead of enqueueing
// it (duplicate-key coalescing and read piggybacking). The zero value is
// CombineOn, making in-window combining the default execution model; the
// uncombined pipeline stays selectable for ablation and A/B benchmarks.
// Combining changes neither the set of responses nor their per-ID values —
// only how many memory transactions produce them.
type Combining uint8

const (
	// CombineOn merges same-key requests inside the prefetch window:
	// Upsert-on-Upsert folds the increment, Get-on-Get piggybacks one probe
	// result to N responses, Get-after-Put/Upsert is answered by
	// store-to-load forwarding from the in-flight value. Delete is a
	// combine barrier for its key in both directions.
	CombineOn Combining = iota
	// CombineOff enqueues every request individually (the pre-combining hot
	// path, kept as the A/B baseline).
	CombineOff
)

// String implements fmt.Stringer for benchmark labels.
func (c Combining) String() string {
	switch c {
	case CombineOn:
		return "on"
	case CombineOff:
		return "off"
	}
	return "invalid"
}

// ParseCombining maps a benchmark-flag string back to a combining setting.
func ParseCombining(s string) (Combining, error) {
	switch s {
	case "", "on":
		return CombineOn, nil
	case "off":
		return CombineOff, nil
	}
	return 0, fmt.Errorf("unknown combining setting %q (want on|off)", s)
}

// ResizeMode selects how the resizing wrapper (internal/growt) migrates to a
// larger table when fill crosses the threshold. The zero value is
// ResizeIncremental, making cooperative chunk-granular migration the default
// execution model; the stop-the-world gate stays selectable for ablation and
// A/B benchmarks (the resize-ab experiment). Both modes present identical
// table.Map semantics — only the tail-latency shape through a doubling
// differs.
type ResizeMode uint8

const (
	// ResizeIncremental installs a successor table and migrates old-table
	// slots in fixed-size chunks claimed cooperatively by subsequent
	// operations, marking migrated slots MovedKey; no operation ever waits
	// for more than one chunk copy.
	ResizeIncremental ResizeMode = iota
	// ResizeGate migrates the whole table under the exclusive gate — the
	// pre-incremental behaviour, kept as the A/B baseline: writers stall for
	// the full copy at each doubling.
	ResizeGate
)

// String implements fmt.Stringer for benchmark labels.
func (m ResizeMode) String() string {
	switch m {
	case ResizeIncremental:
		return "incremental"
	case ResizeGate:
		return "gate"
	}
	return "invalid"
}

// ParseResizeMode maps a benchmark-flag string back to a resize mode.
func ParseResizeMode(s string) (ResizeMode, error) {
	switch s {
	case "", "incremental":
		return ResizeIncremental, nil
	case "gate":
		return ResizeGate, nil
	}
	return 0, fmt.Errorf("unknown resize mode %q (want incremental|gate)", s)
}

// GovernorMode selects whether a table's handles run the adaptive pipeline
// governor (internal/governor). The zero value is GovernorOff — unlike the
// other execution-model knobs the governor defaults OFF, because its whole
// point is to change pipeline shape at runtime and the deterministic
// property-test matrix (and any caller that tuned a fixed window) must keep
// the exact PR-5 behaviour unless adaptivity is asked for.
type GovernorMode uint8

const (
	// GovernorOff runs the statically configured pipeline, bit-identical to
	// a table built without governor support.
	GovernorOff GovernorMode = iota
	// GovernorAuto attaches the epoch-based hill-climbing controller: it
	// measures throughput per epoch and tunes prefetch-window depth,
	// combining, the probe filter, and the direct/pipelined mode, with
	// hysteresis so a converged workload sees a pinned configuration.
	GovernorAuto
	// GovernorDirect pins the degraded direct mode: Submit bypasses the ring
	// and executes a folklore-style synchronous probe inline. No controller
	// runs; this is the A/B endpoint the governor-ab experiment measures.
	GovernorDirect
)

// String implements fmt.Stringer for benchmark labels.
func (m GovernorMode) String() string {
	switch m {
	case GovernorOff:
		return "off"
	case GovernorAuto:
		return "auto"
	case GovernorDirect:
		return "direct"
	}
	return "invalid"
}

// ParseGovernor maps a benchmark-flag string back to a governor mode.
func ParseGovernor(s string) (GovernorMode, error) {
	switch s {
	case "", "off":
		return GovernorOff, nil
	case "auto":
		return GovernorAuto, nil
	case "direct":
		return GovernorDirect, nil
	}
	return 0, fmt.Errorf("unknown governor mode %q (want auto|off|direct)", s)
}

// TagOf derives a slot's 1-byte tag fingerprint from its key's full 64-bit
// hash. Fastrange consumes the hash's HIGH bits for the slot index (the high
// 64 of the 128-bit product dominate), so the tag takes the LOW byte —
// the bits the index reduction leaves untouched — exactly as the simulator's
// fingerprint does; deriving both index and tag from the same bits would
// alias every key sharing a home slot. Zero is reserved: a published tag is
// always in 1..255, and tag 0 means "empty or claimed-but-unpublished", which
// probes must treat as a candidate (the must-check rule that makes false
// negatives impossible).
func TagOf(h uint64) uint8 {
	t := uint8(h)
	if t == 0 {
		t = 1
	}
	return t
}

// SlotsPerCacheLine is the number of 16-byte key/value slots in one 64-byte
// cache line; reprobes that stay within a line cost no extra memory
// transaction, which is why linear probing averages only 1.3 line accesses
// per op at 75% fill.
const SlotsPerCacheLine = 4

// CacheLineBytes is the transfer unit of the memory subsystem.
const CacheLineBytes = 64

// Map is the minimal synchronous hash-table interface shared by the
// baselines (Folklore, the locked table) and used by the conformance test
// suite. DRAMHiT itself exposes the batched interface, with a synchronous
// adapter for tests.
type Map interface {
	// Get returns the value stored for key and whether it was present.
	Get(key uint64) (uint64, bool)
	// Put stores value for key, overwriting silently. It returns false only
	// if the table is full.
	Put(key, value uint64) bool
	// Upsert adds delta to the value for key, inserting delta if absent.
	// It returns the resulting value and false only if the table is full.
	Upsert(key, delta uint64) (uint64, bool)
	// Delete removes key, returning whether it was present.
	Delete(key uint64) bool
	// Len returns the number of live (non-deleted) entries.
	Len() int
	// Cap returns the number of slots.
	Cap() int
}
