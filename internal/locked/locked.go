// Package locked implements a chained hash table with a spinlock per bucket
// — the "fine-grained locks around each bucket chain" design of TBB-style
// tables that the paper's related work contrasts against, and the lock-based
// synchronization pattern whose contention blow-up Figure 2 plots: every
// operation performs two atomic read-modify-writes (lock acquire/release) on
// the bucket's cache line, so under skew the hot buckets' lock words become
// coherence hot spots.
package locked

import (
	"runtime"
	"sync/atomic"

	"dramhit/internal/hashfn"
	"dramhit/internal/table"
)

// node is a chain element.
type node struct {
	key, val uint64
	next     *node
}

// bucket pads the lock and chain head to a cache line.
type bucket struct {
	lock uint32
	_    uint32
	head *node
	_    [6]uint64
}

// Table is a chained, per-bucket-spinlock hash table implementing table.Map.
type Table struct {
	buckets []bucket
	nb      uint64
	hash    func(uint64) uint64
	live    atomic.Int64
	capTot  uint64
}

// New creates a table sized for roughly n entries (one bucket per two
// expected entries, minimum 8 buckets). Chaining has no fixed capacity; Cap
// reports the sizing hint.
func New(n uint64) *Table {
	if n == 0 {
		panic("locked: zero-size table")
	}
	nb := uint64(8)
	for nb < n/2 {
		nb <<= 1
	}
	return &Table{
		buckets: make([]bucket, nb),
		nb:      nb,
		hash:    hashfn.City64,
		capTot:  n,
	}
}

func (t *Table) bucketFor(key uint64) *bucket {
	return &t.buckets[hashfn.Fastrange(t.hash(key), t.nb)]
}

func lock(l *uint32) {
	for spins := 0; !atomic.CompareAndSwapUint32(l, 0, 1); spins++ {
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

func unlock(l *uint32) { atomic.StoreUint32(l, 0) }

// Get implements table.Map. Even the read path takes the bucket lock — that
// is the point of this baseline (compare with Folklore's and DRAMHiT's
// atomic-free reads).
func (t *Table) Get(key uint64) (uint64, bool) {
	b := t.bucketFor(key)
	lock(&b.lock)
	defer unlock(&b.lock)
	for n := b.head; n != nil; n = n.next {
		if n.key == key {
			return n.val, true
		}
	}
	return 0, false
}

// Put implements table.Map; chaining never reports full.
func (t *Table) Put(key, value uint64) bool {
	b := t.bucketFor(key)
	lock(&b.lock)
	defer unlock(&b.lock)
	for n := b.head; n != nil; n = n.next {
		if n.key == key {
			n.val = value
			return true
		}
	}
	b.head = &node{key: key, val: value, next: b.head}
	t.live.Add(1)
	return true
}

// Upsert implements table.Map.
func (t *Table) Upsert(key, delta uint64) (uint64, bool) {
	b := t.bucketFor(key)
	lock(&b.lock)
	defer unlock(&b.lock)
	for n := b.head; n != nil; n = n.next {
		if n.key == key {
			n.val += delta
			return n.val, true
		}
	}
	b.head = &node{key: key, val: delta, next: b.head}
	t.live.Add(1)
	return delta, true
}

// Delete implements table.Map. Unlike the open-addressing tables, chaining
// can actually unlink the node.
func (t *Table) Delete(key uint64) bool {
	b := t.bucketFor(key)
	lock(&b.lock)
	defer unlock(&b.lock)
	for p := &b.head; *p != nil; p = &(*p).next {
		if (*p).key == key {
			*p = (*p).next
			t.live.Add(-1)
			return true
		}
	}
	return false
}

// Len implements table.Map.
func (t *Table) Len() int { return int(t.live.Load()) }

// Cap implements table.Map (the sizing hint; chaining grows past it).
func (t *Table) Cap() int { return int(t.capTot) }

var _ table.Map = (*Table)(nil)
