package locked

import (
	"testing"

	"dramhit/internal/table"
	"dramhit/internal/tabletest"
	"dramhit/internal/workload"
)

func TestConformance(t *testing.T) {
	// Chaining has no fixed capacity, so the tight-packing tests do not
	// apply.
	tabletest.Run(t, "Locked", func(n uint64) table.Map { return New(n) },
		tabletest.LooseCapacity())
}

func TestChainsHoldCollisions(t *testing.T) {
	// A tiny bucket count forces long chains; everything must remain
	// reachable.
	m := New(8) // 8 buckets minimum
	keys := workload.UniqueKeys(1, 500)
	for _, k := range keys {
		m.Put(k, k^3)
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k^3 {
			t.Fatalf("chain lost key: (%d, %v)", v, ok)
		}
	}
	if m.Len() != 500 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestDeleteUnlinksMidChain(t *testing.T) {
	m := New(8)
	keys := workload.UniqueKeys(2, 30)
	for _, k := range keys {
		m.Put(k, 1)
	}
	// Delete every other key; the rest must survive.
	for i := 0; i < len(keys); i += 2 {
		if !m.Delete(keys[i]) {
			t.Fatalf("delete of present key %d failed", i)
		}
	}
	for i, k := range keys {
		_, ok := m.Get(k)
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d presence = %v, want %v", i, ok, want)
		}
	}
	if m.Len() != 15 {
		t.Fatalf("Len = %d, want 15", m.Len())
	}
}

func BenchmarkLockedGet(b *testing.B) {
	m := New(1 << 16)
	keys := workload.UniqueKeys(3, 1<<15)
	for _, k := range keys {
		m.Put(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i%len(keys)])
	}
}
