package latency

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantilesOfKnownDistribution(t *testing.T) {
	r := NewRecorder(0)
	for i := 1; i <= 1000; i++ {
		r.Add(float64(i))
	}
	c := r.CDF()
	if q := c.Quantile(0.5); math.Abs(q-500.5) > 1 {
		t.Errorf("median = %f, want ~500.5", q)
	}
	if q := c.Quantile(0.9); math.Abs(q-900) > 2 {
		t.Errorf("p90 = %f, want ~900", q)
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 1000 {
		t.Errorf("extremes = %f %f", c.Quantile(0), c.Quantile(1))
	}
	if m := c.Mean(); math.Abs(m-500.5) > 0.01 {
		t.Errorf("mean = %f", m)
	}
}

func TestAtIsInverseOfQuantile(t *testing.T) {
	r := NewRecorder(0)
	for i := 1; i <= 10000; i++ {
		r.Add(float64(i))
	}
	c := r.CDF()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := c.Quantile(q)
		if got := c.At(v); math.Abs(got-q) > 0.01 {
			t.Errorf("At(Quantile(%f)) = %f", q, got)
		}
	}
}

func TestAtBoundaries(t *testing.T) {
	r := NewRecorder(0)
	r.Add(10)
	r.Add(20)
	c := r.CDF()
	if c.At(5) != 0 {
		t.Error("At below min should be 0")
	}
	if c.At(10) != 0.5 {
		t.Errorf("At(10) = %f, want 0.5 (inclusive)", c.At(10))
	}
	if c.At(25) != 1 {
		t.Error("At above max should be 1")
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	r := NewRecorder(100)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i % 1000))
	}
	if r.Count() != 100000 {
		t.Errorf("Count = %d", r.Count())
	}
	c := r.CDF()
	if c.Len() != 100 {
		t.Errorf("retained %d samples, cap 100", c.Len())
	}
	// The reservoir must still roughly represent the distribution
	// (uniform over 0..999).
	if med := c.Quantile(0.5); med < 250 || med > 750 {
		t.Errorf("reservoir median %f implausible for uniform 0..999", med)
	}
}

func TestSeriesMonotone(t *testing.T) {
	r := NewRecorder(0)
	for i := 1; i <= 5000; i++ {
		r.Add(float64(i * i % 9973))
	}
	s := r.CDF().Series(32)
	if len(s) != 32 {
		t.Fatalf("series has %d points", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i][0] <= s[i-1][0] || s[i][1] < s[i-1][1] {
			t.Fatalf("series not monotone at %d: %v -> %v", i, s[i-1], s[i])
		}
	}
	if s[len(s)-1][1] != 1 {
		t.Errorf("series does not reach 1: %f", s[len(s)-1][1])
	}
}

func TestQuickQuantileOrdering(t *testing.T) {
	prop := func(vals []float64) bool {
		r := NewRecorder(0)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			r.Add(v)
		}
		c := r.CDF()
		if c.Len() == 0 {
			return true
		}
		return c.Quantile(0.1) <= c.Quantile(0.5) && c.Quantile(0.5) <= c.Quantile(0.9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyRecorder(t *testing.T) {
	c := NewRecorder(0).CDF()
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF should return NaN")
	}
	if c.Series(10) != nil {
		t.Error("empty series should be nil")
	}
}

func TestStringHasPercentiles(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.Add(float64(i))
	}
	s := r.CDF().String()
	if len(s) == 0 {
		t.Error("empty string")
	}
}
