package latency

import (
	"math"
	"testing"
)

// TestAtIncludesTies pins the upper-bound semantics of At on heavily tied
// data: the cumulative proportion at v counts every sample equal to v, at
// every position of the tied run.
func TestAtIncludesTies(t *testing.T) {
	r := NewRecorder(0)
	// 100 copies of 5, flanked below and above.
	for i := 0; i < 50; i++ {
		r.Add(1)
	}
	for i := 0; i < 100; i++ {
		r.Add(5)
	}
	for i := 0; i < 50; i++ {
		r.Add(9)
	}
	c := r.CDF()
	cases := []struct{ v, want float64 }{
		{0, 0},
		{1, 0.25},
		{4.999, 0.25},
		{5, 0.75}, // all 100 ties included
		{8.999, 0.75},
		{9, 1},
		{100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

// TestAtAllEqual is the degenerate distribution a quantized timer produces:
// every sample identical. At must handle the full-length tied run.
func TestAtAllEqual(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 10000; i++ {
		r.Add(42)
	}
	c := r.CDF()
	if got := c.At(42); got != 1 {
		t.Fatalf("At(42) = %v, want 1", got)
	}
	if got := c.At(41.9); got != 0 {
		t.Fatalf("At(41.9) = %v, want 0", got)
	}
}

// TestReservoirUnbiased is a statistical pin on the reservoir sampler: when
// more samples arrive than the recorder retains, every sample must have
// equal probability of surviving, so the retained mean of a uniform ramp
// stays near the ramp's midpoint and the quartiles stay near their ideals.
func TestReservoirUnbiased(t *testing.T) {
	const (
		capS = 4096
		n    = 400_000
	)
	r := NewRecorder(capS)
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if r.Count() != n {
		t.Fatalf("seen = %d, want %d", r.Count(), n)
	}
	c := r.CDF()
	if c.Len() != capS {
		t.Fatalf("retained = %d, want %d", c.Len(), capS)
	}
	// With 4096 uniform retained samples, the standard error of the mean is
	// n/sqrt(12*4096) ≈ 0.45% of the range; 4% tolerance is ~9 sigma, so a
	// biased sampler fails and an unbiased one never flakes (the recorder's
	// xorshift stream is deterministic anyway).
	mid := float64(n) / 2
	if m := c.Mean(); math.Abs(m-mid) > 0.04*float64(n) {
		t.Errorf("retained mean = %.0f, want ≈%.0f (bias)", m, mid)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		want := q * float64(n)
		if got := c.Quantile(q); math.Abs(got-want) > 0.04*float64(n) {
			t.Errorf("q%.2f = %.0f, want ≈%.0f", q, got, want)
		}
	}
}
