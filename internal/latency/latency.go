// Package latency records per-request completion latencies and computes the
// cumulative distribution the paper plots in Figure 9.
package latency

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Recorder accumulates latency samples (any unit; the harness uses cycles).
// It keeps every sample up to a cap and then switches to reservoir sampling,
// so memory stays bounded while the distribution stays unbiased.
type Recorder struct {
	samples []float64
	seen    uint64
	cap     int
	// xorshift state for the reservoir; deterministic.
	rng uint64
}

// NewRecorder creates a recorder keeping at most capSamples samples
// (0 selects 1<<20).
func NewRecorder(capSamples int) *Recorder {
	if capSamples <= 0 {
		capSamples = 1 << 20
	}
	return &Recorder{cap: capSamples, rng: 0x9e3779b97f4a7c15}
}

func (r *Recorder) next() uint64 {
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return r.rng
}

// Add records one sample.
func (r *Recorder) Add(v float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	// Reservoir: replace a random slot with probability cap/seen.
	if idx := r.next() % r.seen; idx < uint64(r.cap) {
		r.samples[idx] = v
	}
}

// Count returns the number of samples observed (not retained).
func (r *Recorder) Count() uint64 { return r.seen }

// CDF summarizes the recorded distribution.
type CDF struct {
	sorted []float64
}

// CDF sorts and freezes the distribution.
func (r *Recorder) CDF() *CDF {
	s := append([]float64(nil), r.samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Merge combines frozen CDFs into one distribution over the union of their
// retained samples (the multi-worker summary case).
func Merge(cdfs ...*CDF) *CDF {
	var all []float64
	for _, c := range cdfs {
		all = append(all, c.sorted...)
	}
	sort.Float64s(all)
	return &CDF{sorted: all}
}

// At returns the cumulative proportion of samples ≤ v.
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Upper bound — the first index whose sample exceeds v — so runs of
	// equal values are included in O(log n); the previous linear walk over
	// ties degraded to O(n) on the heavily tied distributions quantized
	// timers produce.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > v })
	return float64(idx) / float64(len(c.sorted))
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Len returns the retained sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Series renders the CDF as (latency, cumulative-proportion) pairs at
// log-spaced latencies, matching Figure 9's log-x presentation.
func (c *CDF) Series(points int) [][2]float64 {
	if len(c.sorted) == 0 || points < 2 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		x := lo * math.Pow(hi/lo, float64(i)/float64(points-1))
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// String renders a compact percentile table.
func (c *CDF) String() string {
	var b strings.Builder
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(&b, "p%g=%0.0f ", q*100, c.Quantile(q))
	}
	return strings.TrimSpace(b.String())
}
