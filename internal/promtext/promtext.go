// Package promtext is a strict parser for the Prometheus text exposition
// format (version 0.0.4), used two ways: the obs metrics-format test parses
// every /metrics render under it so new series cannot drift out of scrape
// compatibility, and cmd/dramhit-top consumes live endpoints through it.
//
// "Strict" means the parser enforces what a real Prometheus scraper
// assumes rather than what it happens to tolerate: metric and label names
// match the spec grammar, label values are properly quoted and escaped,
// every sample belongs to a # TYPE-declared family, # HELP/# TYPE precede
// their family's samples and appear at most once, families are contiguous
// (no interleaving), and histogram families only emit _bucket/_sum/_count
// suffixed samples.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the sample's full metric name (for histogram families this
	// includes the _bucket/_sum/_count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: its # HELP/# TYPE metadata and samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validTypes are the exposition-format metric types.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// Parse reads an exposition-format document and returns its families in
// document order. Any grammar or structure violation is an error naming the
// offending line.
func Parse(r io.Reader) ([]Family, error) {
	p := parser{byName: map[string]*Family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		if err := p.line(strings.TrimRight(sc.Text(), " \t")); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.families, nil
}

type parser struct {
	families []Family
	byName   map[string]*Family
	// cur is the family the document is currently emitting; once another
	// family starts, returning to cur is a contiguity violation.
	cur    string
	closed map[string]bool
}

// familyOf maps a sample name to its family name: histogram/summary series
// drop the _bucket/_sum/_count suffix when the base family is declared.
func (p *parser) familyOf(sample string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suf)
		if !ok {
			continue
		}
		if f, exists := p.byName[base]; exists && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return sample
}

func (p *parser) enter(name string) (*Family, error) {
	if p.closed == nil {
		p.closed = map[string]bool{}
	}
	if p.cur != name {
		if p.cur != "" {
			p.closed[p.cur] = true
		}
		if p.closed[name] {
			return nil, fmt.Errorf("family %q is not contiguous (reopened after another family started)", name)
		}
		p.cur = name
	}
	f, ok := p.byName[name]
	if !ok {
		p.families = append(p.families, Family{Name: name})
		f = &p.families[len(p.families)-1]
		p.byName[name] = f
		// Appending may relocate earlier Family values; refresh the index.
		for i := range p.families {
			p.byName[p.families[i].Name] = &p.families[i]
		}
	}
	return p.byName[name], nil
}

func (p *parser) line(s string) error {
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "#") {
		return p.comment(s)
	}
	return p.sample(s)
}

func (p *parser) comment(s string) error {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", s)
		}
		name := fields[2]
		if !nameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		f, err := p.enter(name)
		if err != nil {
			return err
		}
		if f.Help != "" {
			return fmt.Errorf("duplicate HELP for %q", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("HELP for %q after its samples", name)
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
		if f.Help == "" {
			return fmt.Errorf("empty HELP text for %q", name)
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", s)
		}
		name, typ := fields[2], fields[3]
		if !nameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("invalid metric type %q for %q", typ, name)
		}
		f, err := p.enter(name)
		if err != nil {
			return err
		}
		if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		f.Type = typ
	}
	return nil
}

func (p *parser) sample(s string) error {
	name, rest, err := splitName(s)
	if err != nil {
		return err
	}
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		rest, err = parseLabels(rest, labels)
		if err != nil {
			return fmt.Errorf("sample %q: %w", name, err)
		}
	}
	valueFields := strings.Fields(rest)
	if len(valueFields) < 1 || len(valueFields) > 2 {
		return fmt.Errorf("sample %q: expected value [timestamp], got %q", name, rest)
	}
	value, err := parseValue(valueFields[0])
	if err != nil {
		return fmt.Errorf("sample %q: %w", name, err)
	}
	if len(valueFields) == 2 {
		if _, err := strconv.ParseInt(valueFields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: invalid timestamp %q", name, valueFields[1])
		}
	}
	fam := p.familyOf(name)
	f, err := p.enter(fam)
	if err != nil {
		return err
	}
	if f.Type == "" {
		return fmt.Errorf("sample %q has no preceding # TYPE", name)
	}
	if (f.Type == "histogram" || f.Type == "summary") && name == fam {
		ok := f.Type == "summary" // summaries may emit bare quantile samples
		if !ok {
			return fmt.Errorf("histogram %q emits bare sample (want _bucket/_sum/_count)", fam)
		}
	}
	f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	return nil
}

func splitName(s string) (name, rest string, err error) {
	end := strings.IndexAny(s, "{ ")
	if end < 0 {
		return "", "", fmt.Errorf("malformed sample line %q", s)
	}
	name = s[:end]
	if !nameRE.MatchString(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, strings.TrimLeft(s[end:], " "), nil
}

// parseLabels consumes a {name="value",...} block and returns the remainder.
func parseLabels(s string, out map[string]string) (rest string, err error) {
	s = s[1:] // consume {
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return strings.TrimLeft(s[1:], " "), nil
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return "", fmt.Errorf("malformed label block near %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !labelRE.MatchString(lname) {
			return "", fmt.Errorf("invalid label name %q", lname)
		}
		s = strings.TrimLeft(s[eq+1:], " ")
		if !strings.HasPrefix(s, `"`) {
			return "", fmt.Errorf("label %q value not quoted", lname)
		}
		val, n, err := unquote(s)
		if err != nil {
			return "", fmt.Errorf("label %q: %w", lname, err)
		}
		if _, dup := out[lname]; dup {
			return "", fmt.Errorf("duplicate label %q", lname)
		}
		out[lname] = val
		s = strings.TrimLeft(s[n:], " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if !strings.HasPrefix(s, "}") {
			return "", fmt.Errorf("expected ',' or '}' near %q", s)
		}
	}
}

// unquote decodes a double-quoted label value with the exposition-format
// escapes (\\, \", \n) and returns the decoded value plus the number of
// input bytes consumed including both quotes.
func unquote(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", s)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

// Find returns the family with the given name, or nil.
func Find(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}
