package promtext

import (
	"math"
	"strings"
	"testing"
)

const good = `# HELP demo_ops_total Operations completed
# TYPE demo_ops_total counter
demo_ops_total{worker="w0"} 12
demo_ops_total{worker="w1"} 34
# HELP demo_lat_ns Latency
# TYPE demo_lat_ns histogram
demo_lat_ns_bucket{worker="w0",le="63"} 3
demo_lat_ns_bucket{worker="w0",le="+Inf"} 5
demo_lat_ns_sum{worker="w0"} 900
demo_lat_ns_count{worker="w0"} 5
# TYPE demo_fill gauge
demo_fill 0.75
`

func TestParseGood(t *testing.T) {
	fams, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	ops := Find(fams, "demo_ops_total")
	if ops == nil || ops.Type != "counter" || ops.Help != "Operations completed" {
		t.Fatalf("ops family = %+v", ops)
	}
	if len(ops.Samples) != 2 || ops.Samples[1].Labels["worker"] != "w1" || ops.Samples[1].Value != 34 {
		t.Fatalf("ops samples = %+v", ops.Samples)
	}
	lat := Find(fams, "demo_lat_ns")
	if lat == nil || lat.Type != "histogram" || len(lat.Samples) != 4 {
		t.Fatalf("lat family = %+v", lat)
	}
	if !math.IsInf(mustLabelVal(t, lat.Samples[1]), 1) {
		t.Fatalf("le=+Inf label did not parse: %+v", lat.Samples[1])
	}
	fill := Find(fams, "demo_fill")
	if fill == nil || fill.Samples[0].Value != 0.75 {
		t.Fatalf("fill = %+v", fill)
	}
}

func mustLabelVal(t *testing.T, s Sample) float64 {
	t.Helper()
	le := s.Labels["le"]
	if le == "+Inf" {
		return math.Inf(1)
	}
	return 0
}

func TestParseEscapes(t *testing.T) {
	in := "# TYPE m gauge\n" + `m{l="a\"b\\c\nd"} 1` + "\n"
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["l"]; got != "a\"b\\c\nd" {
		t.Fatalf("label = %q", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":   "no_type 1\n",
		"bad metric name":       "# TYPE 1bad counter\n1bad 1\n",
		"bad type":              "# TYPE m histo\nm 1\n",
		"duplicate TYPE":        "# TYPE m gauge\n# TYPE m gauge\nm 1\n",
		"duplicate HELP":        "# HELP m a\n# HELP m b\n# TYPE m gauge\nm 1\n",
		"TYPE after samples":    "# TYPE m gauge\nm 1\n# TYPE m gauge\n",
		"unquoted label":        "# TYPE m gauge\nm{l=1} 1\n",
		"bad label name":        "# TYPE m gauge\nm{0l=\"x\"} 1\n",
		"duplicate label":       "# TYPE m gauge\nm{a=\"1\",a=\"2\"} 1\n",
		"unterminated label":    "# TYPE m gauge\nm{a=\"1} 1\n",
		"bad value":             "# TYPE m gauge\nm abc\n",
		"bare histogram sample": "# TYPE m histogram\nm 1\n",
		"interleaved families":  "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\na 2\n",
		"empty HELP":            "# HELP m\n# TYPE m gauge\nm 1\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseTimestamps(t *testing.T) {
	in := "# TYPE m gauge\nm 1 1712345678\n"
	if _, err := Parse(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	bad := "# TYPE m gauge\nm 1 not_a_ts\n"
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Fatal("bad timestamp parsed without error")
	}
}
