// Package simd emulates the AVX-512 probing kernel of DRAMHiT-P-SIMD
// (paper §3.4, Listing 1) in portable Go. The paper loads a whole 64-byte
// cache line (four key/value slots) into a 512-bit register, compares the
// probe key against all four key lanes at once with a masked vector compare,
// and uses conditional (masked) operations instead of branches.
//
// Go has no SIMD intrinsics, so this package reproduces the structure of
// that kernel — lane-parallel compare producing a bitmask, cidx masking so
// only lanes at or after the probe entry position participate, and
// branch-free select via mask arithmetic — with 8-byte scalar lanes. The
// point of the emulation is twofold: it keeps the DRAMHiT-P-SIMD code path
// (and its single-cache-line probe granularity) faithful to the paper, and
// it gives the cycle-level simulator a distinct kernel whose per-line cost
// model differs from the scalar probe exactly the way the paper reports
// (a few cycles per operation, §4.2).
package simd

import "math/bits"

// LaneCount is the number of key lanes per cache line (four 16-byte
// key/value slots per 64-byte line).
const LaneCount = 4

// keyCmpMasks[cidx] selects which lane comparisons are valid when the probe
// enters the line at slot offset cidx — the direct analogue of Listing 1's
// key_cmp_masks array ("cidx: 1; only last three comparisons valid").
var keyCmpMasks = [LaneCount]uint8{
	0b1111, // cidx 0: all four comparisons valid
	0b1110, // cidx 1: last three
	0b1100, // cidx 2: last two
	0b1000, // cidx 3: last one
}

// eqMask returns 1 if a == b, else 0, without a branch (the scalar stand-in
// for one lane of _mm512_cmpeq_epu64_mask). The xor is zero only on
// equality; the (x|-x)>>63 trick extracts "is non-zero".
func eqMask(a, b uint64) uint64 {
	x := a ^ b
	return ((x | -x) >> 63) ^ 1
}

// KeyCompare compares key against the four lanes and returns the lane
// bitmask of equal lanes, restricted to lanes >= cidx. lanes must have at
// least LaneCount elements.
func KeyCompare(lanes *[LaneCount]uint64, key uint64, cidx int) uint8 {
	var m uint8
	m |= uint8(eqMask(lanes[0], key)) << 0
	m |= uint8(eqMask(lanes[1], key)) << 1
	m |= uint8(eqMask(lanes[2], key)) << 2
	m |= uint8(eqMask(lanes[3], key)) << 3
	return m & keyCmpMasks[cidx]
}

// FirstLane returns the index of the lowest set lane in mask, and whether
// any lane was set. Branch-free via trailing-zeros.
func FirstLane(mask uint8) (int, bool) {
	tz := bits.TrailingZeros8(mask)
	return tz, mask != 0
}

// ProbeMasks computes the key-equality and empty-lane masks for one line in
// a single pass, restricted to lanes >= cidx. It is the zero-call-overhead
// core of ProbeLine: small enough to inline into the tables' probe loops,
// with first-match selection left to the caller (combine the masks and take
// the lowest set bit, as ProbeLine does).
func ProbeMasks(lanes *[LaneCount]uint64, key, emptyKey uint64, cidx int) (keyMask, emptyMask uint8) {
	l0, l1, l2, l3 := lanes[0], lanes[1], lanes[2], lanes[3]
	k := uint8(eqMask(l0, key)) |
		uint8(eqMask(l1, key))<<1 |
		uint8(eqMask(l2, key))<<2 |
		uint8(eqMask(l3, key))<<3
	e := uint8(eqMask(l0, emptyKey)) |
		uint8(eqMask(l1, emptyKey))<<1 |
		uint8(eqMask(l2, emptyKey))<<2 |
		uint8(eqMask(l3, emptyKey))<<3
	valid := keyCmpMasks[cidx]
	return k & valid, e & valid
}

// ProbeResult classifies the outcome of a line probe.
type ProbeResult uint8

// Probe outcomes.
const (
	// Miss means neither the key nor an empty slot is in the line; the
	// caller reprobes into the next line.
	Miss ProbeResult = iota
	// HitKey means the key was found.
	HitKey
	// HitEmpty means an empty slot terminates the probe chain first.
	HitEmpty
)

// ProbeLine performs the paper's vectorized probe over one line of key
// lanes: it computes the key-equality mask and the empty-slot mask in lane
// parallel, selects whichever match comes first in probe order, and returns
// the lane offset. emptyKey is the key-space value marking empty slots.
// Tombstoned lanes match neither mask and are skipped implicitly.
func ProbeLine(lanes *[LaneCount]uint64, key, emptyKey uint64, cidx int) (lane int, res ProbeResult) {
	return ProbeLine4(lanes[0], lanes[1], lanes[2], lanes[3], key, emptyKey, cidx)
}

// ProbeLine4 is ProbeLine with the four key lanes passed in registers — the
// form the live tables' probe loops use so no lane array is materialized on
// the stack. Each lane comparison is written as a separate single-assignment
// conditional, which the compiler lowers to a flag-setting compare plus
// SETcc — the scalar ISA's closest analogue to one lane of
// _mm512_cmpeq_epu64_mask, and ~2.5x cheaper than the arithmetic
// (x|-x)>>63 encoding eqMask uses. This is the innermost call of the probe
// loop; sharing the lane reads and the single keyCmpMasks lookup keeps it
// to one call frame.
func ProbeLine4(l0, l1, l2, l3, key, emptyKey uint64, cidx int) (lane int, res ProbeResult) {
	var k0, k1, k2, k3, e0, e1, e2, e3 uint8
	if l0 == key {
		k0 = 1
	}
	if l1 == key {
		k1 = 1
	}
	if l2 == key {
		k2 = 1
	}
	if l3 == key {
		k3 = 1
	}
	if l0 == emptyKey {
		e0 = 1
	}
	if l1 == emptyKey {
		e1 = 1
	}
	if l2 == emptyKey {
		e2 = 1
	}
	if l3 == emptyKey {
		e3 = 1
	}
	keyMask := k0 | k1<<1 | k2<<2 | k3<<3
	emptyMask := e0 | e1<<1 | e2<<2 | e3<<3
	valid := keyCmpMasks[cidx]
	keyMask &= valid
	emptyMask &= valid
	// The first match in probe order wins: whichever mask has the lower
	// set bit. Combining the masks and testing which one owns the lowest
	// bit is branch-free.
	combined := keyMask | emptyMask
	if combined == 0 {
		return 0, Miss
	}
	low := combined & (-combined) // isolate lowest set bit
	lane = bits.TrailingZeros8(low)
	// res = HitKey if the lowest bit belongs to keyMask else HitEmpty,
	// selected without a data-dependent branch.
	isKey := uint8(0)
	if keyMask&low != 0 { // compiles to a flag-setting compare + SETcc
		isKey = 1
	}
	res = ProbeResult(uint8(HitEmpty) - isKey*(uint8(HitEmpty)-uint8(HitKey)))
	return lane, res
}

// LineMasks computes, lane-parallel, the three bitmasks a line-granular
// probe dispatches on: lanes holding key, lanes empty, and lanes tombstoned
// (tombKey), each restricted to lanes >= cidx. The live tables use the first
// two to locate the match and the chain terminator and the third to tell a
// "line full of tombstones" from a "line full of live keys" without
// re-touching the lanes.
func LineMasks(lanes *[LaneCount]uint64, key, emptyKey, tombKey uint64, cidx int) (keyMask, emptyMask, tombMask uint8) {
	return KeyCompare(lanes, key, cidx),
		KeyCompare(lanes, emptyKey, cidx),
		KeyCompare(lanes, tombKey, cidx)
}

// SelectValue returns a if mask is 1 and b if mask is 0, branch-free — the
// analogue of a masked vector blend used by Listing 1's conditional copy.
func SelectValue(mask, a, b uint64) uint64 {
	// mask must be 0 or 1; turn it into all-ones/all-zeros.
	m := -mask
	return (a & m) | (b &^ m)
}

// CopyMask computes the lane store mask for inserting key into the line:
// zero if the key already exists in the line (no copy needed), otherwise
// the lowest empty lane (Listing 1's key_copy_mask).
func CopyMask(lanes *[LaneCount]uint64, key, emptyKey uint64, cidx int) uint8 {
	if KeyCompare(lanes, key, cidx) != 0 {
		return 0
	}
	em := KeyCompare(lanes, emptyKey, cidx)
	return em & (-em) // lowest empty lane only
}

// ----- 8-wide byte-lane kernel (tag-fingerprint filter) -----
//
// The tag filter packs one fingerprint byte per slot into a []uint64
// sidecar, so a single word load covers TagLanes slots — two full 64-byte
// key/value cache lines. The kernel below answers, branch-free, "which of
// these 8 slots could hold my key?" from that one word, letting the probe
// loops skip entire key-line loads. Byte lane b of the word is slot base+b
// (little-endian byte order, matching how slotarr packs tags).

// TagLanes is the number of tag bytes per packed tag word.
const TagLanes = 8

const (
	loBytes = 0x0101010101010101 // 0x01 in every byte lane
	hiBits  = 0x8080808080808080 // 0x80 in every byte lane
)

// BroadcastByte replicates b into all eight byte lanes of a word — the
// scalar analogue of _mm512_set1_epi8.
func BroadcastByte(b uint8) uint64 {
	return uint64(b) * loBytes
}

// matchBits returns a word with 0x80 set in exactly the byte lanes of w
// equal to the broadcast byte pattern bcast, and zero elsewhere. This is the
// exact byte-equality SWAR: the textbook haszero(w^bcast) form admits
// cross-byte borrow false positives (a lane holding value 1 is falsely
// flagged when the lane below it borrows), so instead each lane's low seven
// bits are summed with 0x7f — carrying into bit 7 iff any of them is set —
// and the carry is OR-ed with the lane's own bit 7. Bit 7 of the result is
// then 0 iff the whole lane is zero, with no carry ever crossing a lane
// boundary. Inverting under the 0x80 mask yields the equal-lane bits.
func matchBits(w, bcast uint64) uint64 {
	x := w ^ bcast
	t := ((x & ^uint64(hiBits)) + ^uint64(hiBits)) | x
	return ^t & hiBits
}

// packMask compresses a word holding 0x80-or-0x00 per byte lane into an
// 8-bit lane mask (bit b set iff lane b's 0x80 was set). The multiply
// gathers the eight isolated bits into the top byte: after m>>7 each lane
// contributes a single bit at position 8*lane, and the magic constant's
// terms shift each of those to a distinct position in bits 56..63 with no
// two terms ever colliding (all partial products are single bits at
// distinct offsets, so the multiply is carry-free).
func packMask(m uint64) uint8 {
	return uint8(((m >> 7) * 0x0102040810204080) >> 56)
}

// MatchBytes8 returns the 8-bit lane mask of byte lanes in w equal to b.
func MatchBytes8(w uint64, b uint8) uint8 {
	return packMask(matchBits(w, BroadcastByte(b)))
}

// ZeroBytes8 returns the 8-bit lane mask of zero byte lanes in w.
func ZeroBytes8(w uint64) uint8 {
	return packMask(matchBits(w, 0))
}

// TagCandidates8 returns the candidate-lane mask for probing a key with tag
// fingerprint tag against the packed tag word w: lanes whose tag byte equals
// tag (possible match — one-in-255 false positive rate for non-matching
// keys) plus lanes whose tag byte is zero. Zero means empty or
// claimed-but-not-yet-published, and both cases must be checked against the
// key lanes: an empty lane terminates the probe chain, and a claimed lane
// may hold the probed key with its tag store still in flight. Folding the
// zero lanes in here is what makes tag filtering false-negative-free — a
// probe can skip a line only when every lane provably holds some other
// published key.
func TagCandidates8(w uint64, tag uint8) uint8 {
	m := matchBits(w, BroadcastByte(tag)) | matchBits(w, 0)
	return packMask(m)
}

// BucketCandidates7 is TagCandidates8 specialized to the bucket layout's
// in-cell metadata word: byte 0 is the control byte (publish bitmap + stash
// flag) and bytes 1..7 hold the fingerprints of payload lanes 0..6, so the
// control lane is shifted out and the result is a 7-bit mask whose bit i
// corresponds to slot lane i. The zero-byte fold carries the same
// false-negative-free contract as TagCandidates8: a lane whose fingerprint
// byte is still zero (unpublished, or slot word CASed but the metadata OR
// not yet visible) stays a candidate and must be resolved against its slot
// word.
func BucketCandidates7(meta uint64, tag uint8) uint8 {
	return uint8(TagCandidates8(meta, tag)>>1) & 0x7f
}
