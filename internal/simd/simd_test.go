package simd

import (
	"testing"
	"testing/quick"
)

func TestEqMask(t *testing.T) {
	cases := []struct {
		a, b uint64
		want uint64
	}{
		{0, 0, 1}, {1, 1, 1}, {^uint64(0), ^uint64(0), 1},
		{0, 1, 0}, {1, 0, 0}, {^uint64(0), 0, 0}, {1 << 63, 0, 0},
	}
	for _, c := range cases {
		if got := eqMask(c.a, c.b); got != c.want {
			t.Errorf("eqMask(%x, %x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqMaskQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		want := uint64(0)
		if a == b {
			want = 1
		}
		return eqMask(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyCompareMasksByCidx(t *testing.T) {
	lanes := [LaneCount]uint64{7, 7, 7, 7}
	for cidx := 0; cidx < LaneCount; cidx++ {
		m := KeyCompare(&lanes, 7, cidx)
		// Lanes below cidx must be masked off.
		for l := 0; l < LaneCount; l++ {
			bit := m>>l&1 == 1
			want := l >= cidx
			if bit != want {
				t.Errorf("cidx %d lane %d: set=%v want %v", cidx, l, bit, want)
			}
		}
	}
}

func TestKeyCompareNoMatch(t *testing.T) {
	lanes := [LaneCount]uint64{1, 2, 3, 4}
	if m := KeyCompare(&lanes, 9, 0); m != 0 {
		t.Errorf("mask = %b for absent key", m)
	}
}

func TestFirstLane(t *testing.T) {
	if _, ok := FirstLane(0); ok {
		t.Error("FirstLane(0) reported a lane")
	}
	for l := 0; l < 8; l++ {
		lane, ok := FirstLane(1 << l)
		if !ok || lane != l {
			t.Errorf("FirstLane(1<<%d) = (%d, %v)", l, lane, ok)
		}
	}
	if lane, _ := FirstLane(0b1010); lane != 1 {
		t.Errorf("FirstLane picks lowest: got %d", lane)
	}
}

func TestProbeLineOutcomes(t *testing.T) {
	const empty = uint64(0)
	cases := []struct {
		name     string
		lanes    [LaneCount]uint64
		key      uint64
		cidx     int
		wantRes  ProbeResult
		wantLane int
	}{
		{"key in lane 0", [4]uint64{5, 1, 2, 3}, 5, 0, HitKey, 0},
		{"key in lane 3", [4]uint64{1, 2, 3, 5}, 5, 0, HitKey, 3},
		{"empty first", [4]uint64{empty, 5, 1, 2}, 5, 0, HitEmpty, 0},
		{"key before empty", [4]uint64{5, empty, 1, 2}, 5, 0, HitKey, 0},
		{"tombstones skipped, then empty", [4]uint64{^uint64(0), ^uint64(0), empty, 1}, 5, 0, HitEmpty, 2},
		{"full line of others", [4]uint64{1, 2, 3, 4}, 5, 0, Miss, 0},
		{"cidx masks early match", [4]uint64{5, 1, 2, 5}, 5, 1, HitKey, 3},
		{"cidx masks early empty", [4]uint64{empty, 1, 2, empty}, 5, 2, HitEmpty, 3},
		{"cidx 3 no match", [4]uint64{5, 5, 5, 1}, 5, 3, Miss, 0},
	}
	for _, c := range cases {
		lane, res := ProbeLine(&c.lanes, c.key, empty, c.cidx)
		if res != c.wantRes || (res != Miss && lane != c.wantLane) {
			t.Errorf("%s: got (lane %d, res %d), want (lane %d, res %d)",
				c.name, lane, res, c.wantLane, c.wantRes)
		}
	}
}

func TestProbeLineMatchesScalarReference(t *testing.T) {
	// Property: ProbeLine agrees with a straightforward scalar loop.
	const empty = uint64(99)
	prop := func(l0, l1, l2, l3, key uint64, cidxRaw uint8) bool {
		lanes := [LaneCount]uint64{l0 % 4, l1 % 4, l2 % 4, l3 % 4}
		k := key % 4
		cidx := int(cidxRaw) % LaneCount
		gotLane, gotRes := ProbeLine(&lanes, k, empty, cidx)
		// Scalar reference.
		for l := cidx; l < LaneCount; l++ {
			if lanes[l] == k {
				return gotRes == HitKey && gotLane == l
			}
			if lanes[l] == empty {
				return gotRes == HitEmpty && gotLane == l
			}
		}
		return gotRes == Miss
		// note: lanes are in 0..3 and empty is 99, so HitEmpty only occurs
		// if we inject it — extend below.
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Same property with empties injected.
	prop2 := func(l0, l1, l2, l3, key uint64, cidxRaw uint8) bool {
		pick := func(v uint64) uint64 {
			if v%5 == 0 {
				return empty
			}
			return v % 4
		}
		lanes := [LaneCount]uint64{pick(l0), pick(l1), pick(l2), pick(l3)}
		k := key % 4
		cidx := int(cidxRaw) % LaneCount
		gotLane, gotRes := ProbeLine(&lanes, k, empty, cidx)
		for l := cidx; l < LaneCount; l++ {
			if lanes[l] == k {
				return gotRes == HitKey && gotLane == l
			}
			if lanes[l] == empty {
				return gotRes == HitEmpty && gotLane == l
			}
		}
		return gotRes == Miss
	}
	if err := quick.Check(prop2, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLineMasks(t *testing.T) {
	const empty, tomb = uint64(0), ^uint64(0)
	lanes := [LaneCount]uint64{empty, 7, tomb, 7}
	km, em, tm := LineMasks(&lanes, 7, empty, tomb, 0)
	if km != 0b1010 || em != 0b0001 || tm != 0b0100 {
		t.Fatalf("masks = %04b %04b %04b", km, em, tm)
	}
	// cidx restricts all three masks identically.
	km, em, tm = LineMasks(&lanes, 7, empty, tomb, 2)
	if km != 0b1000 || em != 0 || tm != 0b0100 {
		t.Fatalf("cidx 2 masks = %04b %04b %04b", km, em, tm)
	}
	f := func(l0, l1, l2, l3, key uint64, cidxRaw uint8) bool {
		pick := func(v uint64) uint64 {
			switch v % 7 {
			case 0:
				return empty
			case 1:
				return tomb
			default:
				return v%4 + 1
			}
		}
		ls := [LaneCount]uint64{pick(l0), pick(l1), pick(l2), pick(l3)}
		k := key%4 + 1
		cidx := int(cidxRaw) % LaneCount
		km, em, tm := LineMasks(&ls, k, empty, tomb, cidx)
		for l := 0; l < LaneCount; l++ {
			bit := uint8(1) << l
			wantK := l >= cidx && ls[l] == k
			wantE := l >= cidx && ls[l] == empty
			wantT := l >= cidx && ls[l] == tomb
			if (km&bit != 0) != wantK || (em&bit != 0) != wantE || (tm&bit != 0) != wantT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSelectValue(t *testing.T) {
	if SelectValue(1, 10, 20) != 10 {
		t.Error("SelectValue(1) did not pick a")
	}
	if SelectValue(0, 10, 20) != 20 {
		t.Error("SelectValue(0) did not pick b")
	}
	f := func(mask bool, a, b uint64) bool {
		m := uint64(0)
		want := b
		if mask {
			m, want = 1, a
		}
		return SelectValue(m, a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyMask(t *testing.T) {
	const empty = uint64(0)
	// Key already present: no copy.
	lanes := [LaneCount]uint64{empty, 7, empty, 1}
	if m := CopyMask(&lanes, 7, empty, 0); m != 0 {
		t.Errorf("copy mask %b for existing key", m)
	}
	// Key absent: lowest empty lane only.
	if m := CopyMask(&lanes, 9, empty, 0); m != 0b0001 {
		t.Errorf("copy mask %b, want 0001", m)
	}
	// cidx skips lane 0's empty.
	if m := CopyMask(&lanes, 9, empty, 1); m != 0b0100 {
		t.Errorf("copy mask %b, want 0100", m)
	}
	// No empties at all.
	full := [LaneCount]uint64{1, 2, 3, 4}
	if m := CopyMask(&full, 9, empty, 0); m != 0 {
		t.Errorf("copy mask %b for full line", m)
	}
}

// refMatch8 is the obvious byte-at-a-time reference the SWAR kernel must
// agree with.
func refMatch8(w uint64, b uint8) uint8 {
	var m uint8
	for lane := 0; lane < TagLanes; lane++ {
		if uint8(w>>(8*lane)) == b {
			m |= 1 << lane
		}
	}
	return m
}

func TestBroadcastByte(t *testing.T) {
	cases := []struct {
		b    uint8
		want uint64
	}{
		{0, 0}, {1, 0x0101010101010101}, {0x80, 0x8080808080808080},
		{0xff, 0xffffffffffffffff}, {0xab, 0xabababababababab},
	}
	for _, c := range cases {
		if got := BroadcastByte(c.b); got != c.want {
			t.Errorf("BroadcastByte(%#x) = %#x, want %#x", c.b, got, c.want)
		}
	}
}

func TestMatchBytes8BorrowCases(t *testing.T) {
	// The cases the naive haszero form gets wrong: a lane holding 1 (or any
	// small value) adjacent to lanes that would generate a borrow/carry in
	// the subtract-based formulation.
	cases := []struct {
		w    uint64
		b    uint8
		want uint8
	}{
		{0x0000000000000001, 1, 0b00000001},
		{0x0100000000000000, 1, 0b10000000},
		{0x0101010101010101, 1, 0b11111111},
		{0x0001000100010001, 1, 0b01010101},
		{0x0100010001000100, 0, 0b01010101},
		{0xff01ff01ff01ff01, 1, 0b01010101},
		{0x0201020102010201, 1, 0b01010101},
		{0x8000800080008000, 0x80, 0b10101010},
		{0xffffffffffffffff, 0xff, 0b11111111},
		{0, 0, 0b11111111},
		{0, 1, 0},
	}
	for _, c := range cases {
		if got := MatchBytes8(c.w, c.b); got != c.want {
			t.Errorf("MatchBytes8(%#016x, %#x) = %08b, want %08b", c.w, c.b, got, c.want)
		}
	}
}

func TestMatchBytes8MatchesReference(t *testing.T) {
	f := func(w uint64, b uint8) bool {
		return MatchBytes8(w, b) == refMatch8(w, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// Bias toward near-miss lanes (values within ±1 of the target byte),
	// where carry/borrow bugs live.
	g := func(raw [TagLanes]uint8, b uint8) bool {
		var w uint64
		for lane, r := range raw {
			v := b + uint8(int(r%5)-2) // b-2 .. b+2
			w |= uint64(v) << (8 * lane)
		}
		return MatchBytes8(w, b) == refMatch8(w, b)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestZeroBytes8(t *testing.T) {
	f := func(w uint64) bool {
		return ZeroBytes8(w) == refMatch8(w, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestTagCandidates8(t *testing.T) {
	// Candidates = matching-tag lanes OR zero lanes, and tag 0 never occurs
	// as a published value so the union is well defined.
	f := func(w uint64, tag uint8) bool {
		if tag == 0 {
			tag = 1
		}
		return TagCandidates8(w, tag) == refMatch8(w, tag)|refMatch8(w, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// False-negative freedom: a lane holding the probe's tag, or zero, is
	// always a candidate — spot checks on the structural cases.
	if m := TagCandidates8(0, 7); m != 0xff {
		t.Errorf("all-zero word: candidates %08b, want all", m)
	}
	if m := TagCandidates8(BroadcastByte(7), 7); m != 0xff {
		t.Errorf("all-matching word: candidates %08b, want all", m)
	}
	if m := TagCandidates8(BroadcastByte(9), 7); m != 0 {
		t.Errorf("all-other word: candidates %08b, want none", m)
	}
	if m := TagCandidates8(0x0900000000000007, 7); m != 0b11111111&^0b10000000|0b00000001 {
		// lane 0 matches (7), lanes 1..6 are zero, lane 7 holds 9.
		t.Errorf("mixed word: candidates %08b", m)
	}
}

func BenchmarkTagCandidates8(b *testing.B) {
	var sink uint8
	w := uint64(0x0709000007000009)
	for i := 0; i < b.N; i++ {
		sink |= TagCandidates8(w+uint64(i), uint8(i)|1)
	}
	_ = sink
}

func BenchmarkProbeLine(b *testing.B) {
	lanes := [LaneCount]uint64{1, 2, 3, 4}
	var sink int
	for i := 0; i < b.N; i++ {
		lane, _ := ProbeLine(&lanes, uint64(i&7), 0, i&3)
		sink += lane
	}
	_ = sink
}
