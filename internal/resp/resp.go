// Package resp implements the server side of the Redis serialization
// protocol (RESP2) request path: an incremental command reader that accepts
// both multibulk framing (`*N\r\n$len\r\n...`, what every client library and
// redis-cli send) and the inline form (`GET key\r\n`, what a human typing
// into netcat sends), plus allocation-free reply append helpers.
//
// The reader is written for a network front-end feeding a batched hash-table
// pipeline, which imposes three requirements the obvious parser does not
// meet:
//
//   - Split reads: a frame may straddle arbitrarily many Read calls (TCP
//     segmentation does not respect protocol boundaries). The reader
//     consumes from a bufio.Reader and never assumes a frame arrives whole.
//   - Bounded allocation: a length header is a claim, not a fact. The reader
//     rejects bulk lengths and argument counts above its limits before
//     allocating anything, so `$999999999999\r\n` costs an error, not 1 TB.
//   - Buffer stability: parsed arguments alias an internal arena that
//     survives subsequent ReadCommand calls until Release, so a caller may
//     batch several pipelined commands (holding their keys) before executing
//     any of them.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. They bound what a single command may make the server
// allocate; real redis defaults are far larger, but a hash-table front end
// has no business accepting 512 MB values.
const (
	// MaxArgs bounds the argument count of one command (multibulk `*N`).
	MaxArgs = 1024
	// MaxBulk bounds one argument's byte length (bulk `$N`).
	MaxBulk = 8 << 20
	// MaxInline bounds the byte length of one inline command line.
	MaxInline = 64 << 10
)

// Errors the reader returns for protocol violations. All of them leave the
// connection in an undefined framing state: the server should reply with an
// error and close, which is what real redis does for malformed multibulk.
var (
	ErrTooManyArgs = errors.New("resp: multibulk argument count exceeds limit")
	ErrBulkTooLong = errors.New("resp: bulk length exceeds limit")
	ErrLineTooLong = errors.New("resp: inline command exceeds limit")
	ErrBadFraming  = errors.New("resp: protocol error")
)

// Command is one parsed client command. Args[0] is the verb as sent (case
// preserved); the slices alias the Reader's arena and stay valid until the
// next Release.
type Command struct {
	Args [][]byte
}

// Reader incrementally parses client commands from a stream.
type Reader struct {
	br *bufio.Reader
	// arena backs every argument returned since the last Release; args is
	// the reusable header slice. Offsets (not subslice headers) are recorded
	// during a command's parse because arena may reallocate mid-command.
	arena []byte
	args  [][]byte
	offs  []int // start offsets into arena, one per arg, current command
	lens  []int
}

// NewReader wraps r. Pass a *bufio.Reader to control buffer size; anything
// else is wrapped in one sized to MaxInline, so the declared inline limit is
// actually reachable — readLine turns bufio.ErrBufferFull into the too-long
// error, so a smaller buffer would silently become the effective limit.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, MaxInline)
	}
	return &Reader{br: br}
}

// Release invalidates every Command returned since the previous Release and
// reclaims their arena space. Call it once per batch, after the replies are
// rendered (argument bytes are dead by then).
func (r *Reader) Release() {
	r.arena = r.arena[:0]
	r.args = r.args[:0]
}

// Buffered reports whether at least one byte of a further command is already
// buffered — the "more pipelined input is here, keep batching" signal.
func (r *Reader) Buffered() bool { return r.br.Buffered() > 0 }

// ArenaBytes reports how many argument bytes the arena holds since the last
// Release. Callers batching commands use it to bound parse-side memory: a
// pipelined stream of large commands with tiny (or noreply) replies grows
// the arena, not the reply buffer, so reply-side high-water marks alone
// would never trigger a flush.
func (r *Reader) ArenaBytes() int { return len(r.arena) }

// readLine reads up to and including CRLF (or a bare LF, which redis inline
// parsing tolerates), returning the line without the terminator. The
// returned slice aliases the bufio buffer — copy before the next read. Lines
// longer than max fail with errLong without buffering the remainder.
func (r *Reader) readLine(max int, errLong error) ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Drain the oversized line so a caller that chooses to continue is
		// at a frame boundary, then fail.
		for err == bufio.ErrBufferFull {
			_, err = r.br.ReadSlice('\n')
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		return nil, errLong
	}
	if err != nil {
		// Data with no terminator is a partial frame cut by EOF.
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(line) > max {
		return nil, errLong
	}
	line = line[:len(line)-1] // strip \n
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// parseLen parses a decimal length after a type byte, rejecting junk,
// overflow and empty input. Negative values are returned as-is (multibulk
// and bulk use -1 for nil).
func parseLen(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, ErrBadFraming
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, ErrBadFraming
		}
	}
	var n int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, ErrBadFraming
		}
		n = n*10 + int64(c-'0')
		if n > 1<<40 { // far beyond any limit; stop before overflow
			return 0, ErrBulkTooLong
		}
	}
	if neg {
		n = -n
	}
	return n, nil
}

// hold copies b into the arena and records the argument. The returned
// subslice headers are materialized in finish(), after the arena has stopped
// moving for this command.
func (r *Reader) hold(b []byte) {
	r.offs = append(r.offs, len(r.arena))
	r.lens = append(r.lens, len(b))
	r.arena = append(r.arena, b...)
}

// finish materializes the held arguments of the current command.
func (r *Reader) finish() Command {
	base := len(r.args)
	for i, off := range r.offs {
		r.args = append(r.args, r.arena[off:off+r.lens[i]])
	}
	r.offs = r.offs[:0]
	r.lens = r.lens[:0]
	return Command{Args: r.args[base:]}
}

// ReadCommand parses the next command. io.EOF is returned only at a clean
// frame boundary; a frame cut mid-parse returns io.ErrUnexpectedEOF.
// Empty inline lines and empty multibulks (*0, *-1) are skipped iteratively
// — a megabyte of bare newlines costs reads, not stack.
func (r *Reader) ReadCommand() (Command, error) {
	for {
		cmd, again, err := r.readCommand()
		if err != nil || !again {
			return cmd, err
		}
	}
}

func (r *Reader) readCommand() (_ Command, again bool, _ error) {
	r.offs = r.offs[:0]
	r.lens = r.lens[:0]
	first, err := r.br.ReadByte()
	if err != nil {
		return Command{}, false, err
	}
	if first != '*' {
		// Inline command: whitespace-separated words on one line. An empty
		// line is skipped (redis does the same), letting netcat users hit
		// return harmlessly.
		if err := r.br.UnreadByte(); err != nil {
			return Command{}, false, err
		}
		line, err := r.readLine(MaxInline, ErrLineTooLong)
		if err != nil {
			return Command{}, false, err
		}
		for i := 0; i < len(line); {
			for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
				i++
			}
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			if i > start {
				if len(r.offs) >= MaxArgs {
					return Command{}, false, ErrTooManyArgs
				}
				r.hold(line[start:i])
			}
		}
		if len(r.offs) == 0 {
			return Command{}, true, nil // empty line: try the next one
		}
		return r.finish(), false, nil
	}

	// Multibulk: *N, then N bulk strings.
	line, err := r.readLine(32, ErrBadFraming)
	if err != nil {
		return Command{}, false, eofMidFrame(err)
	}
	n, err := parseLen(line)
	if err != nil {
		return Command{}, false, err
	}
	if n < 0 || n == 0 {
		// *0 and *-1 are no-ops from a client; skip to the next command.
		if n < -1 {
			return Command{}, false, ErrBadFraming
		}
		return Command{}, true, nil
	}
	if n > MaxArgs {
		return Command{}, false, ErrTooManyArgs
	}
	for i := int64(0); i < n; i++ {
		t, err := r.br.ReadByte()
		if err != nil {
			return Command{}, false, eofMidFrame(err)
		}
		if t != '$' {
			return Command{}, false, fmt.Errorf("%w: expected '$', got %q", ErrBadFraming, t)
		}
		line, err := r.readLine(32, ErrBadFraming)
		if err != nil {
			return Command{}, false, eofMidFrame(err)
		}
		blen, err := parseLen(line)
		if err != nil {
			return Command{}, false, err
		}
		if blen < 0 {
			return Command{}, false, ErrBadFraming // nil bulk inside a command
		}
		if blen > MaxBulk {
			return Command{}, false, ErrBulkTooLong
		}
		// Reserve, then read directly into the arena: the length was
		// validated, so this allocates at most MaxBulk.
		off := len(r.arena)
		r.arena = append(r.arena, make([]byte, blen)...)
		if _, err := io.ReadFull(r.br, r.arena[off:]); err != nil {
			return Command{}, false, eofMidFrame(err)
		}
		r.offs = append(r.offs, off)
		r.lens = append(r.lens, int(blen))
		// Trailing CRLF (LF alone tolerated).
		c, err := r.br.ReadByte()
		if err != nil {
			return Command{}, false, eofMidFrame(err)
		}
		if c == '\r' {
			if c, err = r.br.ReadByte(); err != nil {
				return Command{}, false, eofMidFrame(err)
			}
		}
		if c != '\n' {
			return Command{}, false, fmt.Errorf("%w: bulk not terminated", ErrBadFraming)
		}
	}
	return r.finish(), false, nil
}

// eofMidFrame converts a clean EOF inside a frame into ErrUnexpectedEOF so
// callers can distinguish "connection closed between commands" from "closed
// mid-command".
func eofMidFrame(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Reply append helpers: each appends one RESP reply to dst and returns the
// extended slice, so a connection can render a whole pipelined batch into
// one write buffer without intermediate allocation.

// AppendSimple appends +s\r\n.
func AppendSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendError appends -msg\r\n.
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, '-')
	dst = append(dst, msg...)
	return append(dst, '\r', '\n')
}

// AppendInt appends :n\r\n.
func AppendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '\r', '\n')
}

// AppendBulk appends $len\r\nb\r\n.
func AppendBulk(dst []byte, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

// AppendNil appends the nil bulk $-1\r\n.
func AppendNil(dst []byte) []byte {
	return append(dst, '$', '-', '1', '\r', '\n')
}

// AppendArrayHeader appends *n\r\n.
func AppendArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}
