package resp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// read parses every command from in, returning arg-joined strings.
func read(t *testing.T, r io.Reader) ([]string, error) {
	t.Helper()
	rd := NewReader(r)
	var out []string
	for {
		cmd, err := rd.ReadCommand()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		parts := make([]string, len(cmd.Args))
		for i, a := range cmd.Args {
			parts[i] = string(a)
		}
		out = append(out, strings.Join(parts, " "))
	}
}

func TestMultibulk(t *testing.T) {
	in := "*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"
	got, err := read(t, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SET foo bar", "GET foo"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestInline(t *testing.T) {
	for in, want := range map[string]string{
		"PING\r\n":            "PING",
		"GET  foo\n":          "GET foo", // bare LF, double space
		"  SET foo bar  \r\n": "SET foo bar",
		"\r\n\r\nPING\r\n":    "PING", // empty lines skipped
	} {
		got, err := read(t, strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("%q: got %q, want [%q]", in, got, want)
		}
	}
}

// TestSplitReads feeds frames one byte per Read call: the parser must
// reassemble them identically to the whole-buffer parse.
func TestSplitReads(t *testing.T) {
	in := "*3\r\n$3\r\nSET\r\n$5\r\nhello\r\n$11\r\nworld value\r\nPING\r\n*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n"
	whole, err := read(t, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	split, err := read(t, iotest.OneByteReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != 3 || len(split) != 3 {
		t.Fatalf("whole=%q split=%q", whole, split)
	}
	for i := range whole {
		if whole[i] != split[i] {
			t.Fatalf("split read diverged at %d: %q vs %q", i, whole[i], split[i])
		}
	}
}

// TestArenaStability pins the batching contract: args from several pipelined
// commands all stay valid until Release.
func TestArenaStability(t *testing.T) {
	var in bytes.Buffer
	for i := 0; i < 100; i++ {
		in.WriteString("*3\r\n$3\r\nSET\r\n$4\r\nkey")
		in.WriteByte(byte('0' + i%10))
		in.WriteString("\r\n$5\r\nval0")
		in.WriteByte(byte('0' + i%10))
		in.WriteString("\r\n")
	}
	rd := NewReader(bytes.NewReader(in.Bytes()))
	var cmds []Command
	for {
		cmd, err := rd.ReadCommand()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cmds = append(cmds, cmd)
	}
	if len(cmds) != 100 {
		t.Fatalf("parsed %d commands", len(cmds))
	}
	for i, cmd := range cmds {
		wantK := "key" + string(byte('0'+i%10))
		wantV := "val0" + string(byte('0'+i%10))
		if string(cmd.Args[0]) != "SET" || string(cmd.Args[1]) != wantK || string(cmd.Args[2]) != wantV {
			t.Fatalf("cmd %d corrupted after batch parse: %q %q %q",
				i, cmd.Args[0], cmd.Args[1], cmd.Args[2])
		}
	}
	rd.Release()
}

func TestOversizedBulkRejectedBeforeAllocation(t *testing.T) {
	// The bulk length claims 1 TB; the reader must fail without allocating.
	in := "*2\r\n$3\r\nGET\r\n$1099511627776\r\nx\r\n"
	var before, after int64
	allocs := testing.AllocsPerRun(10, func() {
		rd := NewReader(strings.NewReader(in))
		_, err := rd.ReadCommand()
		if !errors.Is(err, ErrBulkTooLong) {
			t.Fatalf("err = %v, want ErrBulkTooLong", err)
		}
	})
	_ = before
	_ = after
	// NewReader allocates its bufio.Reader and Reader struct; the point is
	// that no 1 TB (or even MaxBulk) buffer was attempted. A loose bound on
	// total allocations per parse proves it.
	if allocs > 10 {
		t.Fatalf("oversized bulk caused %v allocations", allocs)
	}
}

func TestTooManyArgs(t *testing.T) {
	if _, err := read(t, strings.NewReader("*98765\r\n")); !errors.Is(err, ErrTooManyArgs) {
		t.Fatalf("err = %v, want ErrTooManyArgs", err)
	}
}

func TestMidFrameEOF(t *testing.T) {
	for _, in := range []string{
		"*2\r\n$3\r\nGET\r\n", // missing second bulk
		"*2\r\n$3\r\nGE",      // cut inside bulk data
		"*2\r\n",              // header only
		"$",                   // inline fragment, no terminator
		"*1\r\n$5\r\nhi\r\n",  // bulk shorter than its header
	} {
		_, err := read(t, strings.NewReader(in))
		if err == nil {
			t.Fatalf("%q parsed cleanly", in)
		}
		if err == io.EOF {
			t.Fatalf("%q: clean EOF for a cut frame", in)
		}
	}
}

func TestBadFraming(t *testing.T) {
	for _, in := range []string{
		"*1\r\n:5\r\n",     // wrong element type
		"*x\r\n",           // junk count
		"*1\r\n$x\r\n",     // junk length
		"*1\r\n$-1\r\n",    // nil bulk inside command
		"*1\r\n$2\r\nhiXX", // unterminated bulk
	} {
		_, err := read(t, strings.NewReader(in))
		if err == nil || err == io.EOF {
			t.Fatalf("%q: err = %v, want framing error", in, err)
		}
	}
}

func TestAppendHelpers(t *testing.T) {
	var b []byte
	b = AppendSimple(b, "OK")
	b = AppendError(b, "ERR boom")
	b = AppendInt(b, -42)
	b = AppendBulk(b, []byte("hey"))
	b = AppendNil(b)
	b = AppendArrayHeader(b, 2)
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$3\r\nhey\r\n$-1\r\n*2\r\n"
	if string(b) != want {
		t.Fatalf("got %q, want %q", b, want)
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	// After warmup, parsing a pipelined batch and Releasing allocates
	// nothing: arena and header slices are reused.
	in := []byte("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n")
	src := bytes.NewReader(in)
	br := bufio.NewReader(src)
	rd := NewReader(br)
	run := func() {
		src.Reset(in)
		br.Reset(src)
		for {
			if _, err := rd.ReadCommand(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				break
			}
		}
		rd.Release()
	}
	run() // warm the arena
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("steady-state parse allocates %v/run", allocs)
	}
}
