package resp

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// chunkReader yields at most n bytes per Read, forcing frames to straddle
// Read boundaries at every offset congruent to the chunk size.
type chunkReader struct {
	b []byte
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.b) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.b) {
		n = len(c.b)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.b[:n])
	c.b = c.b[n:]
	return n, nil
}

// parseAll drains data through the reader, collecting commands until an
// error; it bounds total retained bytes to prove no over-allocation.
func parseAll(t *testing.T, r *Reader, limit int) (cmds [][]string, firstErr error) {
	t.Helper()
	retained := 0
	for {
		cmd, err := r.ReadCommand()
		if err != nil {
			return cmds, err
		}
		var parts []string
		for _, a := range cmd.Args {
			parts = append(parts, string(a))
			retained += len(a)
		}
		cmds = append(cmds, parts)
		if retained > limit {
			t.Fatalf("parser retained %d bytes from a %d-byte input", retained, limit)
		}
	}
}

// FuzzRESPParse is the protocol robustness target: arbitrary bytes must
// never panic the parser, never make it allocate past its limits, and must
// parse identically whether the input arrives whole or one byte at a time.
func FuzzRESPParse(f *testing.F) {
	// Well-formed seeds.
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("PING\r\nSET foo bar\r\nGET foo\r\n"))
	// Frames that straddle read boundaries (exercised for every input by
	// the chunked re-parse below, seeded explicitly for corpus coverage).
	f.Add([]byte("*2\r\n$3\r\nDEL\r\n$26\r\nabcdefghijklmnopqrstuvwxyz\r\n"))
	// Oversized bulk lengths: must fail cleanly, not allocate.
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1099511627776\r\nx\r\n"))
	f.Add([]byte("$999999999999999999999999\r\n"))
	f.Add([]byte("*99999999\r\n"))
	// Bare \n everywhere.
	f.Add([]byte("PING\nGET foo\n"))
	f.Add([]byte("*1\n$4\nPING\n"))
	f.Add([]byte("\n\n\n\n\n"))
	// Pathological fragments.
	f.Add([]byte("*"))
	f.Add([]byte("*2\r\n$3\r\nGE"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("*-1\r\n*0\r\nPING\r\n"))
	f.Add([]byte("*1\r\n:5\r\n"))
	f.Add(bytes.Repeat([]byte("\x00"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16] // keep the chunked re-parse affordable
		}
		// Whole-buffer parse: must not panic; retained bytes bounded by a
		// small multiple of the input (arena holds only parsed args).
		whole, wholeErr := parseAll(t, NewReader(bytes.NewReader(data)), len(data)+16)

		// Byte-at-a-time parse must agree exactly: same commands, and a
		// clean EOF on one side is a clean EOF on the other. (Error values
		// themselves may differ in message, not in presence.)
		// Same bufio capacity as the whole-buffer side (NewReader sizes to
		// MaxInline), so the two parses are strictly comparable while Reads
		// still deliver one byte each.
		split, splitErr := parseAll(t,
			NewReader(bufio.NewReaderSize(&chunkReader{b: data, n: 1}, MaxInline)),
			len(data)+16)
		if len(whole) != len(split) {
			t.Fatalf("whole parse found %d commands, split parse %d", len(whole), len(split))
		}
		for i := range whole {
			if len(whole[i]) != len(split[i]) {
				t.Fatalf("command %d arity differs: %q vs %q", i, whole[i], split[i])
			}
			for j := range whole[i] {
				if whole[i][j] != split[i][j] {
					t.Fatalf("command %d arg %d differs: %q vs %q", i, j, whole[i][j], split[i][j])
				}
			}
		}
		if (wholeErr == io.EOF) != (splitErr == io.EOF) {
			t.Fatalf("EOF cleanliness differs: whole=%v split=%v", wholeErr, splitErr)
		}
	})
}
