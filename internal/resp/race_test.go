//go:build race

package resp

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so zero-alloc pins only hold uninstrumented.
const raceEnabled = true
