//go:build !race

package resp

const raceEnabled = false
