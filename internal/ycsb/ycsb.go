// Package ycsb defines the standard YCSB core workload mixes (A–F) over
// this repository's hash tables, for the load-generator tool and for
// apples-to-apples comparison with the key-value-store literature the paper
// situates itself in (MICA and friends). Operations map onto the table.Map
// vocabulary; scans — which open-addressing point-lookup tables do not
// support — are approximated by a configurable burst of point reads, as is
// conventional when benchmarking hash tables with YCSB E.
package ycsb

import (
	"fmt"
	"math/rand"

	"dramhit/internal/workload"
)

// OpKind is a YCSB operation.
type OpKind uint8

// YCSB operation kinds.
const (
	Read OpKind = iota
	Update
	Insert
	Scan
	ReadModifyWrite
)

// String implements fmt.Stringer.
func (o OpKind) String() string {
	switch o {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Scan:
		return "scan"
	case ReadModifyWrite:
		return "rmw"
	}
	return "invalid"
}

// Mix is a workload definition: operation proportions plus the request
// distribution.
type Mix struct {
	Name   string
	Read   float64
	Update float64
	Insert float64
	Scan   float64
	RMW    float64
	// Zipfian selects the request distribution (YCSB's default theta is
	// 0.99); false = uniform.
	Zipfian bool
}

// The YCSB core workloads.
var (
	// A: update heavy (50/50 read/update), zipfian.
	A = Mix{Name: "A", Read: 0.5, Update: 0.5, Zipfian: true}
	// B: read mostly (95/5), zipfian.
	B = Mix{Name: "B", Read: 0.95, Update: 0.05, Zipfian: true}
	// C: read only, zipfian.
	C = Mix{Name: "C", Read: 1.0, Zipfian: true}
	// D: read latest — approximated with a zipfian over the insertion
	// order's tail via the scrambled rank space.
	D = Mix{Name: "D", Read: 0.95, Insert: 0.05, Zipfian: true}
	// E: short scans (95/5 scan/insert), zipfian.
	E = Mix{Name: "E", Scan: 0.95, Insert: 0.05, Zipfian: true}
	// F: read-modify-write (50/50 read/rmw), zipfian.
	F = Mix{Name: "F", Read: 0.5, RMW: 0.5, Zipfian: true}
)

// ByName returns a core workload by letter.
func ByName(name string) (Mix, error) {
	switch name {
	case "A", "a":
		return A, nil
	case "B", "b":
		return B, nil
	case "C", "c":
		return C, nil
	case "D", "d":
		return D, nil
	case "E", "e":
		return E, nil
	case "F", "f":
		return F, nil
	}
	return Mix{}, fmt.Errorf("ycsb: unknown workload %q (A-F)", name)
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	// ScanLen applies to Scan ops (number of point reads to issue).
	ScanLen int
	// ValueSize is the write's value length in bytes; 0 unless a value
	// sizer is attached (see WithValueSizer), in which case Update, Insert
	// and ReadModifyWrite ops carry their drawn size.
	ValueSize int
}

// Generator produces a deterministic operation stream for one worker.
type Generator struct {
	mix      Mix
	keys     *workload.KeyStream
	rng      *rand.Rand
	salt     uint64
	inserted uint64 // next fresh rank for Insert ops
	maxScan  int
	// miss redirects that fraction of Read ops to guaranteed-absent keys.
	miss    float64
	missRng *rand.Rand
	records uint64
	// sizer, when attached, draws a value size for every write op (the
	// byte-KV benchmarks use it; uint64 runs leave it nil and ValueSize 0).
	sizer *workload.ValueSizer
}

// missRankBase offsets miss ranks far above both the loaded population
// ([0, records)) and the ranks Insert ops consume (records, records+1, ...),
// so a redirected Read can never collide with a key any generator with the
// same seed inserts — ScrambleRank is a bijection, making the misses
// structural rather than probabilistic.
const missRankBase = 1 << 40

// Theta is YCSB's default zipfian constant.
const Theta = 0.99

// NewGenerator builds a generator over a keyspace of `records` loaded rows.
// Insert operations extend the space with fresh keys. Generators with the
// same seed produce identical streams.
func NewGenerator(mix Mix, records uint64, seed int64) *Generator {
	theta := -1.0
	return NewGeneratorTheta(mix, records, seed, theta)
}

// NewGeneratorTheta is NewGenerator with an explicit zipfian constant.
// theta < 0 selects the mix's default (Theta when the mix is zipfian, 0 —
// uniform — otherwise); theta = 0 forces a uniform draw even on zipfian
// mixes, and any positive value sets the skew directly, which is how the
// combining A/B experiments sweep hot-key density.
func NewGeneratorTheta(mix Mix, records uint64, seed int64, theta float64) *Generator {
	if theta < 0 {
		theta = 0
		if mix.Zipfian {
			theta = Theta
		}
	}
	return &Generator{
		mix:      mix,
		keys:     workload.NewKeyStream(seed, records, theta),
		rng:      rand.New(rand.NewSource(seed ^ 0x7f4a7c15)),
		salt:     rand.New(rand.NewSource(seed)).Uint64() | 1,
		inserted: records,
		maxScan:  100,
		records:  records,
	}
}

// NewGeneratorMiss is NewGenerator with a miss ratio: each Read op is, with
// probability miss, redirected to a key from the rank range
// [missRankBase, missRankBase+records) under the generator's own salt — a
// range disjoint from both the loaded ranks and every rank Insert ops can
// reach, so the lookup misses by construction. miss=0 degenerates to
// NewGenerator exactly, draw for draw.
func NewGeneratorMiss(mix Mix, records uint64, seed int64, miss float64) *Generator {
	return NewGeneratorMissTheta(mix, records, seed, miss, -1)
}

// NewGeneratorMissTheta combines the miss-ratio and explicit-theta
// parameters (theta < 0 selects the mix's default, see NewGeneratorTheta).
func NewGeneratorMissTheta(mix Mix, records uint64, seed int64, miss, theta float64) *Generator {
	if miss < 0 || miss > 1 {
		panic("ycsb: miss ratio must be in [0, 1]")
	}
	g := NewGeneratorTheta(mix, records, seed, theta)
	g.miss = miss
	if miss > 0 {
		g.missRng = rand.New(rand.NewSource(seed ^ 0x6d697373)) // "miss"
	}
	return g
}

// WithValueSizer attaches a value-size stream: every Update, Insert and
// ReadModifyWrite op draws its ValueSize from it. Returns g for chaining.
func (g *Generator) WithValueSizer(vs *workload.ValueSizer) *Generator {
	g.sizer = vs
	return g
}

// writeSize draws the next write's value size (0 when no sizer is attached).
func (g *Generator) writeSize() int {
	if g.sizer == nil {
		return 0
	}
	return g.sizer.Next()
}

// readKey draws a Read key, honoring the miss ratio.
func (g *Generator) readKey() uint64 {
	if g.missRng != nil && g.missRng.Float64() < g.miss {
		r := missRankBase + uint64(g.missRng.Int63n(int64(g.records)))
		return workload.ScrambleRank(r, g.salt)
	}
	return g.keys.Next()
}

// LoadKeys returns the keys of the initial dataset (rank order); use with
// the table's batch-insert path during the load phase.
func LoadKeys(records uint64, seed int64) []uint64 {
	return workload.UniqueKeys(seed, int(records))
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	m := g.mix
	switch {
	case r < m.Read:
		return Op{Kind: Read, Key: g.readKey()}
	case r < m.Read+m.Update:
		return Op{Kind: Update, Key: g.keys.Next(), ValueSize: g.writeSize()}
	case r < m.Read+m.Update+m.Insert:
		g.inserted++
		return Op{Kind: Insert, Key: workload.ScrambleRank(g.inserted, g.salt), ValueSize: g.writeSize()}
	case r < m.Read+m.Update+m.Insert+m.Scan:
		return Op{Kind: Scan, Key: g.keys.Next(), ScanLen: 1 + g.rng.Intn(g.maxScan)}
	default:
		return Op{Kind: ReadModifyWrite, Key: g.keys.Next(), ValueSize: g.writeSize()}
	}
}

// Proportions returns the mix's proportions for validation.
func (m Mix) Proportions() map[OpKind]float64 {
	return map[OpKind]float64{
		Read: m.Read, Update: m.Update, Insert: m.Insert, Scan: m.Scan, ReadModifyWrite: m.RMW,
	}
}
