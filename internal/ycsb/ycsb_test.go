package ycsb

import (
	"math"
	"testing"

	"dramhit/internal/table"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "a", "f"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("Z"); err == nil {
		t.Error("ByName(Z) should fail")
	}
}

func TestMixProportionsSumToOne(t *testing.T) {
	for _, m := range []Mix{A, B, C, D, E, F} {
		sum := 0.0
		for _, p := range m.Proportions() {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("workload %s proportions sum to %f", m.Name, sum)
		}
	}
}

func TestGeneratorHonorsMix(t *testing.T) {
	const n = 100_000
	for _, m := range []Mix{A, B, E, F} {
		g := NewGenerator(m, 10_000, 1)
		counts := map[OpKind]int{}
		for i := 0; i < n; i++ {
			op := g.Next()
			counts[op.Kind]++
			if op.Kind == Scan && (op.ScanLen < 1 || op.ScanLen > 100) {
				t.Fatalf("scan length %d out of range", op.ScanLen)
			}
		}
		for kind, want := range m.Proportions() {
			got := float64(counts[kind]) / n
			if math.Abs(got-want) > 0.01 {
				t.Errorf("workload %s: %v proportion %.3f, want %.2f", m.Name, kind, got, want)
			}
		}
	}
}

func TestZipfianSkewPresent(t *testing.T) {
	g := NewGenerator(C, 100_000, 2)
	counts := map[uint64]int{}
	for i := 0; i < 50_000; i++ {
		counts[g.Next().Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under theta 0.99 the hottest key draws a large multiple of the mean.
	if max < 200 {
		t.Errorf("hottest key only %d hits; zipfian skew missing", max)
	}
}

func TestInsertsAreFreshKeys(t *testing.T) {
	g := NewGenerator(D, 1000, 3)
	load := map[uint64]bool{}
	for _, k := range LoadKeys(1000, 3) {
		load[k] = true
	}
	seen := map[uint64]bool{}
	for i := 0; i < 20_000; i++ {
		op := g.Next()
		if op.Kind != Insert {
			continue
		}
		if load[op.Key] {
			t.Fatal("insert collided with a loaded key")
		}
		if seen[op.Key] {
			t.Fatal("insert key repeated")
		}
		seen[op.Key] = true
	}
	if len(seen) == 0 {
		t.Fatal("workload D produced no inserts")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(A, 1000, 9)
	b := NewGenerator(A, 1000, 9)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

// TestRunAgainstTable smoke-runs workload A against a real table via the
// conventional op mapping.
func TestRunAgainstTable(t *testing.T) {
	var m table.Map = newTestTable()
	for _, k := range LoadKeys(4096, 5) {
		m.Put(k, 1)
	}
	g := NewGenerator(A, 4096, 5)
	for i := 0; i < 20_000; i++ {
		op := g.Next()
		switch op.Kind {
		case Read:
			m.Get(op.Key)
		case Update:
			m.Put(op.Key, uint64(i))
		case Insert:
			m.Put(op.Key, 1)
		case ReadModifyWrite:
			if v, ok := m.Get(op.Key); ok {
				m.Put(op.Key, v+1)
			}
		case Scan:
			for j := 0; j < op.ScanLen; j++ {
				m.Get(op.Key + uint64(j))
			}
		}
	}
	if m.Len() == 0 {
		t.Fatal("table empty after workload")
	}
}

func newTestTable() table.Map {
	return tblFactory()
}

// TestGeneratorMissReadsAreAbsent checks the -missratio plumbing: redirected
// reads must never hit a loaded key or any key an Insert op (same seed) can
// produce, and miss=0 must reproduce the plain generator exactly.
func TestGeneratorMissReadsAreAbsent(t *testing.T) {
	const records, seed = 1000, 3
	reachable := map[uint64]bool{}
	for _, k := range LoadKeys(records, seed) {
		reachable[k] = true
	}
	// Workload D inserts fresh keys as it runs; collect the keys a miss-free
	// twin produces so the miss stream can be checked against all of them.
	twin := NewGenerator(D, records, seed)
	for i := 0; i < 50_000; i++ {
		reachable[twin.Next().Key] = true
	}
	g := NewGeneratorMiss(D, records, seed, 0.5)
	missed := 0
	reads := 0
	for i := 0; i < 50_000; i++ {
		op := g.Next()
		if op.Kind != Read {
			continue
		}
		reads++
		if !reachable[op.Key] {
			missed++
		}
	}
	if reads == 0 {
		t.Fatal("workload D produced no reads")
	}
	frac := float64(missed) / float64(reads)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("miss fraction %.3f, want ~0.50", frac)
	}

	a := NewGenerator(A, records, seed)
	b := NewGeneratorMiss(A, records, seed, 0)
	for i := 0; i < 2000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("miss=0 generator diverged from plain generator")
		}
	}
}
