package ycsb

import (
	"testing"

	"dramhit/internal/workload"
)

// TestGeneratorValueSizes checks the sized-generator contract: writes carry
// a drawn size, reads carry zero, attaching a sizer perturbs nothing else
// (keys and kinds match the unsized twin draw for draw), and the whole
// stream stays deterministic under a fixed seed.
func TestGeneratorValueSizes(t *testing.T) {
	const records = 10000
	plain := NewGenerator(A, records, 7)
	sized := NewGenerator(A, records, 7).
		WithValueSizer(workload.NewValueSizer(7, 256, 0.99))
	again := NewGenerator(A, records, 7).
		WithValueSizer(workload.NewValueSizer(7, 256, 0.99))
	writes := 0
	for i := 0; i < 20000; i++ {
		p, s, s2 := plain.Next(), sized.Next(), again.Next()
		if s != s2 {
			t.Fatalf("op %d: same-seed sized generators diverged", i)
		}
		if p.Kind != s.Kind || p.Key != s.Key {
			t.Fatalf("op %d: sizer changed the op stream: (%v,%d) vs (%v,%d)",
				i, p.Kind, p.Key, s.Kind, s.Key)
		}
		if p.ValueSize != 0 {
			t.Fatalf("op %d: unsized generator drew ValueSize %d", i, p.ValueSize)
		}
		switch s.Kind {
		case Update, Insert, ReadModifyWrite:
			if s.ValueSize < 1 || s.ValueSize > 256 {
				t.Fatalf("op %d: write ValueSize %d out of [1, 256]", i, s.ValueSize)
			}
			writes++
		default:
			if s.ValueSize != 0 {
				t.Fatalf("op %d: %v op carries ValueSize %d", i, s.Kind, s.ValueSize)
			}
		}
	}
	if writes == 0 {
		t.Fatal("workload A produced no writes")
	}
}
