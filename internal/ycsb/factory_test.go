package ycsb

import (
	"dramhit/internal/growt"
	"dramhit/internal/table"
)

// tblFactory picks the resizable table so YCSB inserts never hit capacity.
func tblFactory() table.Map { return growt.New(1 << 14) }
