// Package arena is the log-structured key/value store backing the bucket
// layout (internal/slotarr's BucketTable): an append-only arena of
// length-prefixed records that turns the hash table into a pure index.
// Records are immutable once published — an overwrite appends a new record
// and swings the index's slot word to the new reference — so a resize moves
// no key or value bytes, only 8-byte slot words, and variable-length []byte
// keys and values ride the same fixed-width index the uint64 tables use.
//
// # Layout
//
// The arena is a set of segments, each a contiguous []byte filled by exactly
// one Writer with a bump pointer (per-worker segments: no two writers ever
// share a segment, so appends are unsynchronized). A record is
//
//	uvarint(len(key)) uvarint(len(value)) key-bytes value-bytes
//
// and is addressed by a Ref packing (segment, offset) into 48 bits — small
// enough to share a slot word with the 8-bit fingerprint the bucket layout
// stores redundantly in the slot's spare high bits.
//
// # Publication and reclamation
//
// A record's bytes are fully written before its Ref is published by the
// index's slot-word CAS; readers load the slot word with an atomic (acquire)
// load and only then touch the bytes, so the CAS/load pair carries the
// happens-before edge and the byte reads are race-free. Superseded and
// deleted records are retired with Retire, which advances the owning
// segment's dead-byte count; a segment whose bytes are all dead is a
// reclamation candidate. Actual freeing is epoch-based: readers pin the
// current epoch around each record access (Pin.Enter/Exit), Advance — hooked
// to the bucket table's migration completion, the moment the index provably
// holds no stale Refs — steps the global epoch, and a candidate segment is
// unlinked only once every pin has moved past the epoch in which it was
// retired. Unlinking drops the arena's reference; Go's GC frees the bytes
// once the last reader's subslice goes away, so a stale-but-pinned reader
// can never observe recycled memory.
package arena

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// Ref addresses one record: segment index in bits 47:32, byte offset in bits
// 31:0. The zero Ref is valid (segment 0, offset 0) — index layers that need
// a null value must encode it outside the Ref (the bucket layout's slot word
// does: an empty slot word is all-zero, and a published word always carries a
// nonzero fingerprint above the Ref bits).
type Ref uint64

// RefBits is the width of a Ref; the bucket layout relies on it to pack a
// Ref and a fingerprint into one slot word.
const RefBits = 48

// refMask isolates a Ref inside a wider word.
const refMask = (uint64(1) << RefBits) - 1

// MakeRef packs a segment index and offset.
func MakeRef(seg uint32, off uint32) Ref {
	return Ref(uint64(seg)<<32 | uint64(off))
}

func (r Ref) seg() uint32 { return uint32(r >> 32) }
func (r Ref) off() uint32 { return uint32(r) }

// DefaultSegmentBytes is the capacity of a freshly grown segment. Large
// enough that segment turnover is rare, small enough that a mostly-dead
// segment does not strand much memory.
const DefaultSegmentBytes = 1 << 20

// maxSegments bounds the segment index to its 16 bits in the Ref.
const maxSegments = 1 << 16

// segment is one append-only region. buf is written only by the owning
// Writer (unsynchronized bump allocation) and read by anyone holding a Ref
// into it; the publication protocol above makes those reads race-free.
// size is the bytes appended so far (owner-written, atomically published at
// seal time only for accounting); dead counts retired bytes.
type segment struct {
	buf    []byte
	used   atomic.Uint64 // bytes appended (owner bump, atomic so scrapes race-free)
	dead   atomic.Uint64 // bytes retired
	sealed atomic.Bool   // owner moved on; used is final
	// retireEpoch is the global epoch at which the segment became fully
	// dead (valid once candidate is true).
	retireEpoch uint64
	candidate   bool
}

// Arena is the shared state: the copy-on-write segment directory, the
// global reclamation epoch, and the pin registry. One Arena serves any
// number of Writers and readers.
type Arena struct {
	segs    atomic.Pointer[[]*segment]
	epoch   atomic.Uint64
	segSize int

	mu      sync.Mutex // guards directory growth, pin registry, reclamation
	pins    []*Pin
	retired []*segment // fully-dead segments awaiting a safe epoch
	freed   atomic.Uint64
}

// Option configures New.
type Option func(*Arena)

// WithSegmentBytes overrides the per-segment capacity (records larger than
// the capacity get a dedicated segment of exactly their size).
func WithSegmentBytes(n int) Option {
	return func(a *Arena) {
		if n > 0 {
			a.segSize = n
		}
	}
}

// New creates an empty arena.
func New(opts ...Option) *Arena {
	a := &Arena{segSize: DefaultSegmentBytes}
	for _, o := range opts {
		o(a)
	}
	empty := make([]*segment, 0)
	a.segs.Store(&empty)
	return a
}

// Segments returns (total directory slots, still-linked segments); the gap
// is segments reclaimed by Advance. For observability and tests.
func (a *Arena) Segments() (total, live int) {
	segs := *a.segs.Load()
	for _, s := range segs {
		if s != nil {
			live++
		}
	}
	return len(segs), live
}

// Freed returns the number of segments unlinked so far.
func (a *Arena) Freed() uint64 { return a.freed.Load() }

// SegmentStat is one linked segment's scrape-time utilization: bytes
// appended, bytes retired (Used-Dead is the live payload), the segment's
// capacity, and whether its owner moved on (Used is final).
type SegmentStat struct {
	Used   uint64 `json:"used"`
	Dead   uint64 `json:"dead"`
	Cap    uint64 `json:"cap"`
	Sealed bool   `json:"sealed"`
}

// SegmentStats returns per-segment utilization for the still-linked
// segments, in directory order. Scrape-time only; the counters are atomic
// reads against live writers.
func (a *Arena) SegmentStats() []SegmentStat {
	segs := *a.segs.Load()
	out := make([]SegmentStat, 0, len(segs))
	for _, s := range segs {
		if s == nil {
			continue
		}
		out = append(out, SegmentStat{
			Used:   s.used.Load(),
			Dead:   s.dead.Load(),
			Cap:    uint64(len(s.buf)),
			Sealed: s.sealed.Load(),
		})
	}
	return out
}

// newSegment allocates a segment of at least n bytes, links it into the
// directory, and returns it with its index.
func (a *Arena) newSegment(n int) (*segment, uint32) {
	if n < a.segSize {
		n = a.segSize
	}
	s := &segment{buf: make([]byte, n)}
	a.mu.Lock()
	old := *a.segs.Load()
	if len(old) >= maxSegments {
		a.mu.Unlock()
		panic("arena: segment directory full")
	}
	grown := make([]*segment, len(old)+1)
	copy(grown, old)
	id := uint32(len(old))
	grown[id] = s
	a.segs.Store(&grown)
	a.mu.Unlock()
	return s, id
}

// Writer is a single-goroutine appender owning the tail of one segment. It
// doubles as the goroutine's reclamation pin: Enter/Exit bracket every
// record access made outside the index's own synchronization.
type Writer struct {
	Pin
	a   *Arena
	seg *segment
	id  uint32
	off uint32
}

// NewWriter creates a writer (and registers its pin). Writers are not safe
// for concurrent use; create one per worker goroutine.
func (a *Arena) NewWriter() *Writer {
	w := &Writer{a: a}
	a.mu.Lock()
	a.pins = append(a.pins, &w.Pin)
	a.mu.Unlock()
	return w
}

// Arena returns the arena this writer appends to.
func (w *Writer) Arena() *Arena { return w.a }

// recordSize returns the encoded size of a (key, value) record.
func recordSize(klen, vlen int) int {
	return uvarintLen(uint64(klen)) + uvarintLen(uint64(vlen)) + klen + vlen
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Append writes one record and returns its Ref. The record is not yet
// visible to readers — the caller publishes the Ref through an atomic store
// or CAS on an index word, which is the release edge readers synchronize on.
func (w *Writer) Append(key, value []byte) Ref {
	n := recordSize(len(key), len(value))
	if w.seg == nil || int(w.off)+n > len(w.seg.buf) {
		if w.seg != nil {
			w.seg.sealed.Store(true)
			w.a.maybeRetire(w.seg)
		}
		w.seg, w.id = w.a.newSegment(n)
		w.off = 0
	}
	buf := w.seg.buf[w.off:]
	p := binary.PutUvarint(buf, uint64(len(key)))
	p += binary.PutUvarint(buf[p:], uint64(len(value)))
	copy(buf[p:], key)
	copy(buf[p+len(key):], value)
	ref := MakeRef(w.id, w.off)
	w.off += uint32(n)
	w.seg.used.Store(uint64(w.off))
	return ref
}

// Record resolves ref to its key and value subslices with zero copies and
// zero allocation. The caller must hold the happens-before edge on ref (an
// atomic load of the index word that published it) and, if the access can
// outlive the index entry, a pin.
func (a *Arena) Record(ref Ref) (key, value []byte) {
	seg := (*a.segs.Load())[ref.seg()]
	buf := seg.buf[ref.off():]
	klen, p := binary.Uvarint(buf)
	vlen, q := binary.Uvarint(buf[p:])
	p += q
	return buf[p : p+int(klen) : p+int(klen)], buf[p+int(klen) : p+int(klen)+int(vlen) : p+int(klen)+int(vlen)]
}

// Key resolves only the key bytes of ref (same contract as Record).
func (a *Arena) Key(ref Ref) []byte {
	k, _ := a.Record(ref)
	return k
}

// Retire marks ref's record dead (superseded or deleted). When the owning
// segment's bytes are all dead and its writer has moved on, the segment is
// stamped with the current epoch and queued for reclamation at a safe
// Advance.
func (a *Arena) Retire(ref Ref) {
	seg := (*a.segs.Load())[ref.seg()]
	buf := seg.buf[ref.off():]
	klen, p := binary.Uvarint(buf)
	vlen, q := binary.Uvarint(buf[p:])
	n := uint64(p+q) + klen + vlen
	if seg.dead.Add(n) >= seg.used.Load() && seg.sealed.Load() {
		a.maybeRetire(seg)
	}
}

// maybeRetire queues seg for reclamation if it is sealed and fully dead.
func (a *Arena) maybeRetire(seg *segment) {
	if !seg.sealed.Load() || seg.dead.Load() < seg.used.Load() {
		return
	}
	a.mu.Lock()
	if !seg.candidate {
		seg.candidate = true
		seg.retireEpoch = a.epoch.Load()
		a.retired = append(a.retired, seg)
	}
	a.mu.Unlock()
}

// Advance steps the reclamation epoch and unlinks every retired segment no
// pin can still reach: a segment retired at epoch e is freed once the global
// epoch has passed e and no pin is parked at an epoch ≤ e. The bucket table
// calls this when a migration completes — the point at which the index
// provably holds no Refs into pre-migration state — and callers may also
// invoke it periodically. Returns the number of segments unlinked.
func (a *Arena) Advance() int {
	e := a.epoch.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	minPinned := uint64(math.MaxUint64)
	for _, p := range a.pins {
		if ep := p.epoch.Load(); ep != 0 && ep-1 < minPinned {
			minPinned = ep - 1
		}
	}
	kept := a.retired[:0]
	n := 0
	for _, seg := range a.retired {
		// Safe once the epoch has stepped past the retire stamp AND no pin
		// predates it: any reader that could hold a Ref into seg pinned an
		// epoch ≤ retireEpoch (later pins load the index after the Refs were
		// all superseded — Retire happens-before the epoch step).
		if e > seg.retireEpoch && minPinned > seg.retireEpoch {
			segs := *a.segs.Load()
			grown := make([]*segment, len(segs))
			copy(grown, segs)
			for i, s := range grown {
				if s == seg {
					grown[i] = nil
				}
			}
			a.segs.Store(&grown)
			a.freed.Add(1)
			n++
			continue
		}
		kept = append(kept, seg)
	}
	a.retired = kept
	return n
}

// Pin is one reader's reclamation guard: a padded epoch slot. A zero epoch
// means "not pinned"; a pinned reader stores current-epoch+1. Writers embed
// one; standalone readers obtain one with NewPin.
type Pin struct {
	epoch atomic.Uint64
	_     [7]uint64 // pad to a cache line: pins are per-goroutine hot
}

// NewPin registers a standalone reader pin.
func (a *Arena) NewPin() *Pin {
	p := &Pin{}
	a.mu.Lock()
	a.pins = append(a.pins, p)
	a.mu.Unlock()
	return p
}

// Enter pins the current epoch. Cheap: one load and one store on the pin's
// own cache line; no shared-line RMW.
func (p *Pin) Enter(a *Arena) {
	p.epoch.Store(a.epoch.Load() + 1)
}

// Exit releases the pin.
func (p *Pin) Exit() {
	p.epoch.Store(0)
}
