package arena

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAppendRecordRoundTrip pins the record encoding: every (key, value)
// shape round-trips bit-exactly, including empty keys, empty values, and
// lengths spanning the one- and two-byte uvarint ranges.
func TestAppendRecordRoundTrip(t *testing.T) {
	a := New(WithSegmentBytes(256))
	w := a.NewWriter()
	type kv struct{ k, v []byte }
	var want []kv
	var refs []Ref
	for _, klen := range []int{0, 1, 7, 8, 63, 200} {
		for _, vlen := range []int{0, 1, 16, 130} {
			k := bytes.Repeat([]byte{byte(klen + 1)}, klen)
			v := bytes.Repeat([]byte{byte(vlen + 2)}, vlen)
			want = append(want, kv{k, v})
			refs = append(refs, w.Append(k, v))
		}
	}
	for i, ref := range refs {
		k, v := a.Record(ref)
		if !bytes.Equal(k, want[i].k) || !bytes.Equal(v, want[i].v) {
			t.Fatalf("record %d: got (%d,%d) bytes, want (%d,%d)",
				i, len(k), len(v), len(want[i].k), len(want[i].v))
		}
	}
	if total, live := a.Segments(); total < 2 || live != total {
		t.Fatalf("expected multiple live segments from a 256B cap, got total=%d live=%d", total, live)
	}
}

// TestOversizedRecord verifies a record larger than the segment capacity
// gets a dedicated segment instead of failing.
func TestOversizedRecord(t *testing.T) {
	a := New(WithSegmentBytes(64))
	w := a.NewWriter()
	big := bytes.Repeat([]byte{0xab}, 1000)
	ref := w.Append([]byte("k"), big)
	_, v := a.Record(ref)
	if !bytes.Equal(v, big) {
		t.Fatal("oversized record corrupted")
	}
}

// TestRecordZeroAlloc pins the zero-copy read path: Record allocates
// nothing.
func TestRecordZeroAlloc(t *testing.T) {
	a := New()
	w := a.NewWriter()
	ref := w.Append([]byte("hello"), []byte("world"))
	var sink byte
	allocs := testing.AllocsPerRun(100, func() {
		k, v := a.Record(ref)
		sink += k[0] + v[0]
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %v times per run", allocs)
	}
	_ = sink
}

// TestRetireAndAdvance drives the reclamation protocol: retiring every
// record of a sealed segment makes it a candidate, and Advance unlinks it
// once the epoch has stepped past the retire stamp with no pin parked at or
// before it.
func TestRetireAndAdvance(t *testing.T) {
	a := New(WithSegmentBytes(64))
	w := a.NewWriter()
	var refs []Ref
	for i := 0; i < 32; i++ {
		refs = append(refs, w.Append([]byte{byte(i), 1, 2, 3}, []byte{4, 5, 6, 7}))
	}
	// Seal the tail segment by forcing a new one.
	w.Append(bytes.Repeat([]byte{9}, 64), nil)
	for _, r := range refs {
		a.Retire(r)
	}
	if n := a.Advance(); n == 0 {
		// First Advance may only stamp-step; one more must free.
		if n = a.Advance(); n == 0 {
			t.Fatal("fully-dead sealed segments never reclaimed")
		}
	}
	if a.Freed() == 0 {
		t.Fatal("Freed() did not advance")
	}
	total, live := a.Segments()
	if live >= total {
		t.Fatalf("no directory slot was nil'd: total=%d live=%d", total, live)
	}
}

// TestPinBlocksReclamation verifies a parked pin holds every segment retired
// at or after its entry epoch, and releasing it unblocks Advance.
func TestPinBlocksReclamation(t *testing.T) {
	a := New(WithSegmentBytes(64))
	w := a.NewWriter()
	p := a.NewPin()
	p.Enter(a)
	var refs []Ref
	for i := 0; i < 32; i++ {
		refs = append(refs, w.Append([]byte{byte(i), 1, 2, 3}, []byte{4, 5, 6, 7}))
	}
	w.Append(bytes.Repeat([]byte{9}, 64), nil) // seal
	for _, r := range refs {
		a.Retire(r)
	}
	a.Advance()
	if n := a.Advance(); n != 0 {
		t.Fatalf("reclaimed %d segments under an active pin", n)
	}
	p.Exit()
	a.Advance()
	if a.Freed() == 0 {
		t.Fatal("exit did not unblock reclamation")
	}
}

// TestConcurrentWritersReaders hammers the publication protocol under the
// race detector: each writer appends records and publishes their Refs
// through an atomic slot; readers load slots and verify record contents.
func TestConcurrentWritersReaders(t *testing.T) {
	a := New(WithSegmentBytes(1 << 12))
	const writers, perWriter = 4, 400
	slots := make([]atomic.Uint64, writers*perWriter)
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := a.NewWriter()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("key-%d-%d", wi, i))
				v := bytes.Repeat([]byte{byte(wi)}, i%64)
				ref := w.Append(k, v)
				// Publish: 1<<63 marks "set" so the zero Ref stays usable.
				slots[wi*perWriter+i].Store(uint64(ref) | 1<<63)
			}
		}(wi)
	}
	for ri := 0; ri < 2; ri++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := a.NewPin()
			for pass := 0; pass < 50; pass++ {
				for i := range slots {
					p.Enter(a)
					if w := slots[i].Load(); w != 0 {
						k, v := a.Record(Ref(w &^ (1 << 63)))
						if len(k) == 0 || len(v) > 64 {
							t.Errorf("slot %d: bad record (%d,%d)", i, len(k), len(v))
						}
					}
					p.Exit()
				}
			}
		}()
	}
	wg.Wait()
}
