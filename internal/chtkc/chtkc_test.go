package chtkc

import (
	"sync"
	"testing"

	"dramhit/internal/workload"
)

func TestBasicCounting(t *testing.T) {
	tbl := New(1024)
	p := tbl.NewPool()
	for i := 0; i < 5; i++ {
		p.Count(42)
	}
	p.Count(43)
	if v, ok := tbl.Get(42); !ok || v != 5 {
		t.Fatalf("Get(42) = (%d, %v)", v, ok)
	}
	if v, ok := tbl.Get(43); !ok || v != 1 {
		t.Fatalf("Get(43) = (%d, %v)", v, ok)
	}
	if _, ok := tbl.Get(44); ok {
		t.Fatal("absent key found")
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestChainsUnderCollisions(t *testing.T) {
	// A tiny bucket array forces chains; everything must stay countable.
	tbl := New(1) // clamps to 1024 buckets
	p := tbl.NewPool()
	keys := workload.UniqueKeys(1, 5000)
	for _, k := range keys {
		p.Count(k)
		p.Count(k)
	}
	for _, k := range keys {
		if v, ok := tbl.Get(k); !ok || v != 2 {
			t.Fatalf("count = (%d, %v)", v, ok)
		}
	}
	if mc := tbl.MaxChain(); mc < 2 {
		t.Errorf("expected chains, MaxChain = %d", mc)
	}
}

func TestPoolBlockRollover(t *testing.T) {
	tbl := New(1 << 16)
	p := tbl.NewPool()
	keys := workload.UniqueKeys(2, poolBlock*2+10)
	for _, k := range keys {
		p.Count(k)
	}
	if tbl.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(keys))
	}
}

func TestConcurrentExactCounts(t *testing.T) {
	tbl := New(4096)
	keys := workload.UniqueKeys(3, 100)
	const g, rounds = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := tbl.NewPool()
			for r := 0; r < rounds; r++ {
				for _, k := range keys {
					p.Count(k)
				}
			}
		}()
	}
	wg.Wait()
	for _, k := range keys {
		if v, _ := tbl.Get(k); v != g*rounds {
			t.Fatalf("count = %d, want %d", v, g*rounds)
		}
	}
	if tbl.Len() != len(keys) {
		t.Fatalf("Len = %d (duplicate chain nodes?)", tbl.Len())
	}
}

func BenchmarkCount(b *testing.B) {
	tbl := New(1 << 20)
	p := tbl.NewPool()
	keys := workload.UniqueKeys(4, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Count(keys[i&(1<<16-1)])
	}
}
