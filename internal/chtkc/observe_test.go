package chtkc

import (
	"testing"

	"dramhit/internal/obs"
)

// TestObserveCounters pins the per-pool publish contract: upserts equal the
// counting calls, chain hops are at least one per call, and the pull source
// walks the live chains.
func TestObserveCounters(t *testing.T) {
	reg := obs.New()
	tb := New(1024)
	tb.SetObserve(reg)
	p := tb.NewPool()

	const n = 5000
	for i := uint64(0); i < n; i++ {
		p.Count(i % 500) // 10 occurrences per key → update path dominates
	}

	workers := reg.Workers()
	if len(workers) != 1 {
		t.Fatalf("workers = %d, want 1", len(workers))
	}
	w := workers[0]
	if got := w.Counter(obs.CUpserts); got != n {
		t.Errorf("upserts = %d, want %d", got, n)
	}
	if got := w.Counter(obs.CChainHops); got < n {
		t.Errorf("chain_hops = %d, want >= %d", got, n)
	}

	snap := reg.TakeSnapshot()
	src := snap.Sources["chtkc"]
	if src["distinct"] != 500 {
		t.Errorf("distinct = %v, want 500", src["distinct"])
	}
	if src["max_chain"] != float64(tb.MaxChain()) {
		t.Errorf("max_chain = %v, want %d", src["max_chain"], tb.MaxChain())
	}
}

// TestObserveZeroAllocSteady pins the counting path at zero allocations in
// steady state (update path; the insert path amortizes pool blocks).
func TestObserveZeroAllocSteady(t *testing.T) {
	tb := New(1024)
	tb.SetObserve(obs.New())
	p := tb.NewPool()
	for i := uint64(0); i < 256; i++ {
		p.Count(i)
	}
	var k uint64
	if n := testing.AllocsPerRun(100, func() {
		k++
		p.Count(k & 255)
	}); n != 0 {
		t.Errorf("%v allocs per count, want 0", n)
	}
}
