// Package chtkc implements a CHTKC-style k-mer counter (Wang et al.,
// Briefings in Bioinformatics 2020): a lock-free chaining hash table with
// nodes drawn from preallocated per-thread pools. It is the external
// baseline of the paper's Figure 12 macrobenchmark. Chaining resolves
// collisions through pointer traversal, so every extra chain hop is a
// dependent memory access — exactly the access pattern that bottlenecks on
// memory latency and that DRAMHiT's open addressing plus prefetching avoids.
package chtkc

import (
	"strconv"
	"sync/atomic"

	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
)

// node is one chain entry. Count is updated with atomic adds; Next is
// immutable after publication.
type node struct {
	key   uint64
	count atomic.Uint64
	next  *node
}

// Table is a lock-free chained counting table.
type Table struct {
	buckets []atomic.Pointer[node]
	nb      uint64
	full    atomic.Bool
	obsReg  *obs.Registry
	npool   atomic.Int32
}

// SetObserve attaches the table to the observability registry: pools created
// afterwards register per-goroutine counter shards (upserts and chain hops —
// the dependent-miss metric open addressing avoids), and a pull source walks
// the chains at scrape time for distinct-key and max-chain aggregates. Call
// before creating pools.
func (t *Table) SetObserve(reg *obs.Registry) {
	t.obsReg = reg
	reg.AddSource("chtkc", func() map[string]float64 {
		return map[string]float64{
			"distinct":  float64(t.Len()),
			"max_chain": float64(t.MaxChain()),
			"buckets":   float64(t.nb),
		}
	})
}

// New creates a table with one bucket per expected distinct key (rounded up
// to a power of two, minimum 1024).
func New(expectedKeys int) *Table {
	nb := uint64(1024)
	for nb < uint64(expectedKeys) {
		nb <<= 1
	}
	return &Table{buckets: make([]atomic.Pointer[node], nb), nb: nb}
}

// Pool is a per-goroutine node allocator: CHTKC preallocates node memory to
// avoid malloc on the counting path. Each goroutine must own its Pool.
type Pool struct {
	t     *Table
	block []node
	used  int
	obsw  *obs.Worker // nil unless the table is observed
}

// NewPool creates an allocator for one counting goroutine.
func (t *Table) NewPool() *Pool {
	p := &Pool{t: t}
	if t.obsReg != nil {
		n := t.npool.Add(1)
		p.obsw = t.obsReg.Worker("chtkc-p" + strconv.Itoa(int(n)-1))
	}
	return p
}

const poolBlock = 4096

func (p *Pool) alloc(key uint64) *node {
	if p.used == len(p.block) {
		p.block = make([]node, poolBlock)
		p.used = 0
	}
	n := &p.block[p.used]
	p.used++
	n.key = key
	return n
}

// Count adds one occurrence of key, inserting a node if absent. The insert
// path CASes the bucket head; the update path is a single atomic add on the
// node's counter.
func (p *Pool) Count(key uint64) { p.CountN(key, 1) }

// CountN adds cnt occurrences of key in one traversal — the sink for
// callers that coalesce duplicate keys upstream (a folded run of k-mers
// pays one bucket walk and one atomic add instead of cnt of each).
func (p *Pool) CountN(key, cnt uint64) {
	t := p.t
	b := &t.buckets[hashfn.Fastrange(hashfn.City64(key), t.nb)]
	hops := uint64(0)
	for {
		head := b.Load()
		for n := head; n != nil; n = n.next {
			hops++
			if n.key == key {
				n.count.Add(cnt)
				if p.obsw != nil {
					p.obsw.Inc(obs.CUpserts)
					p.obsw.Add(obs.CChainHops, hops)
				}
				return
			}
		}
		// Not found: push a new node. A racing push of the same key makes
		// us re-scan (the fresh head may now contain it).
		n := p.alloc(key)
		n.count.Store(cnt)
		n.next = head
		if b.CompareAndSwap(head, n) {
			if p.obsw != nil {
				p.obsw.Inc(obs.CUpserts)
				p.obsw.Add(obs.CChainHops, hops)
			}
			return
		}
		// CAS failed: un-allocate (reuse the slot on the next alloc) and
		// retry from the new head.
		p.used--
	}
}

// Get returns the count for key.
func (t *Table) Get(key uint64) (uint64, bool) {
	b := &t.buckets[hashfn.Fastrange(hashfn.City64(key), t.nb)]
	for n := b.Load(); n != nil; n = n.next {
		if n.key == key {
			return n.count.Load(), true
		}
	}
	return 0, false
}

// Len returns the number of distinct keys (O(buckets + nodes); diagnostic).
func (t *Table) Len() int {
	total := 0
	for i := range t.buckets {
		for n := t.buckets[i].Load(); n != nil; n = n.next {
			total++
		}
	}
	return total
}

// MaxChain returns the longest bucket chain (diagnostic: chain hops are the
// design's dependent-miss weakness).
func (t *Table) MaxChain() int {
	max := 0
	for i := range t.buckets {
		l := 0
		for n := t.buckets[i].Load(); n != nil; n = n.next {
			l++
		}
		if l > max {
			max = l
		}
	}
	return max
}
