package join

import (
	"math/rand"
	"testing"

	"dramhit/internal/workload"
)

func TestPKFKJoin(t *testing.T) {
	// Build: 1000 unique keys. Probe: each key twice plus misses.
	build := make([]Row, 1000)
	keys := workload.UniqueKeys(1, 1000)
	for i, k := range keys {
		build[i] = Row{Key: k, RowID: uint64(i)}
	}
	j := NewJoiner(len(build), 0.75)
	if err := j.Build(build); err != nil {
		t.Fatal(err)
	}

	probe := append(append([]uint64{}, keys...), keys...)
	probe = append(probe, workload.UniqueKeys(2, 500)...) // misses
	var got []Match
	n := j.Probe(probe, func(m Match) { got = append(got, m) })
	if n != 2000 {
		t.Fatalf("matches = %d, want 2000", n)
	}
	// Every match must be consistent: probe key == build key of the payload.
	for _, m := range got {
		if probe[m.ProbeIndex] != keys[m.BuildRowID] {
			t.Fatalf("mismatched join: probe %d joined build row %d", m.ProbeIndex, m.BuildRowID)
		}
	}
}

func TestDuplicateBuildKeysDetected(t *testing.T) {
	j := NewJoiner(10, 0.75)
	rows := []Row{{Key: 5, RowID: 1}, {Key: 5, RowID: 2}, {Key: 6, RowID: 3}}
	if err := j.Build(rows); err == nil {
		t.Fatal("duplicate build keys not detected")
	}
}

func TestEmptyProbe(t *testing.T) {
	j := NewJoiner(16, 0.75)
	j.Build([]Row{{Key: 1, RowID: 1}})
	if n := j.Probe(nil, func(Match) { t.Fatal("emit on empty probe") }); n != 0 {
		t.Fatalf("matches = %d", n)
	}
}

func TestJoinSelectivity(t *testing.T) {
	// A probe relation where only 10% of keys hit must match exactly 10%.
	keys := workload.UniqueKeys(3, 10_000)
	build := make([]Row, 1000)
	for i := 0; i < 1000; i++ {
		build[i] = Row{Key: keys[i], RowID: uint64(i)}
	}
	j := NewJoiner(len(build), 0.75)
	if err := j.Build(build); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	probe := make([]uint64, 20_000)
	wantMatches := 0
	for i := range probe {
		probe[i] = keys[rng.Intn(len(keys))]
	}
	// Count expected matches directly.
	builtSet := map[uint64]bool{}
	for _, r := range build {
		builtSet[r.Key] = true
	}
	for _, k := range probe {
		if builtSet[k] {
			wantMatches++
		}
	}
	got := j.Probe(probe, func(Match) {})
	if got != wantMatches {
		t.Fatalf("matches = %d, want %d", got, wantMatches)
	}
}

func BenchmarkProbe(b *testing.B) {
	keys := workload.UniqueKeys(5, 1<<18)
	build := make([]Row, len(keys))
	for i, k := range keys {
		build[i] = Row{Key: k, RowID: uint64(i)}
	}
	j := NewJoiner(len(build), 0.75)
	if err := j.Build(build); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += len(keys) {
		n := len(keys)
		if b.N-done < n {
			n = b.N - done
		}
		j.Probe(keys[:n], func(Match) {})
	}
}
