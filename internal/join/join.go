// Package join implements a main-memory equi-join built on DRAMHiT's
// batched interface — the hash-join workload class the paper's introduction
// motivates (Balkesen et al., Blanas et al., Kim et al.). The build phase
// streams the build relation's keys into the table through the insert
// pipeline; the probe phase streams the probe relation through batched
// lookups, so every probe's cache miss is prefetched off the critical path —
// exactly the access pattern hash joins are bottlenecked by.
//
// The build side must be unique on the join key (a primary key); duplicate
// build keys are reported as an error during Build.
package join

import (
	"fmt"

	"dramhit/internal/dramhit"
	"dramhit/internal/table"
)

// Row is a (key, rowID) pair; rowID is the caller's payload (a row pointer,
// an offset — any uint64 except dramhit's reserved value).
type Row struct {
	Key   uint64
	RowID uint64
}

// Match is one join result: the probe row index and the matching build
// row's payload.
type Match struct {
	ProbeIndex uint64
	BuildRowID uint64
}

// Joiner holds the built hash table.
type Joiner struct {
	t     *dramhit.Table
	built int
}

// NewJoiner sizes the table for the build relation (slots = rows/fill).
func NewJoiner(buildRows int, fill float64) *Joiner {
	if fill <= 0 || fill >= 1 {
		fill = 0.75
	}
	slots := uint64(float64(buildRows)/fill) + 64
	return &Joiner{t: dramhit.New(dramhit.Config{Slots: slots})}
}

// Build inserts the build relation. It returns an error on a duplicate key
// (the join requires a unique build side). Build may be called from several
// goroutines with disjoint row slices; duplicate detection is then done by
// the caller or by a Validate pass.
func (j *Joiner) Build(rows []Row) error {
	h := j.t.NewHandle()
	reqs := make([]table.Request, 0, 64)
	flush := func() error {
		rem := reqs
		for len(rem) > 0 {
			n, _ := h.Submit(rem, nil)
			rem = rem[n:]
		}
		reqs = reqs[:0]
		return nil
	}
	for _, r := range rows {
		reqs = append(reqs, table.Request{Op: table.Put, Key: r.Key, Value: r.RowID})
		if len(reqs) == cap(reqs) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for {
		if _, done := h.Flush(nil); done {
			break
		}
	}
	before := j.built
	j.built += len(rows)
	if j.t.Len() != j.built {
		j.built = before + j.t.Len() - before // reconcile
		return fmt.Errorf("join: duplicate build keys detected (%d rows, %d distinct)", before+len(rows), j.t.Len())
	}
	return nil
}

// Probe streams the probe relation's keys through batched lookups, calling
// emit for every match. probeKeys[i] joins against the build side; the
// match carries i so the caller can fetch its probe row. Returns the number
// of matches.
func (j *Joiner) Probe(probeKeys []uint64, emit func(Match)) int {
	h := j.t.NewHandle()
	reqs := make([]table.Request, 0, 64)
	resps := make([]table.Response, 256)
	matches := 0
	collect := func(rs []table.Response) {
		for _, r := range rs {
			if r.Found {
				matches++
				emit(Match{ProbeIndex: r.ID, BuildRowID: r.Value})
			}
		}
	}
	flush := func() {
		rem := reqs
		for len(rem) > 0 {
			nreq, nresp := h.Submit(rem, resps)
			collect(resps[:nresp])
			rem = rem[nreq:]
		}
		reqs = reqs[:0]
	}
	for i, k := range probeKeys {
		reqs = append(reqs, table.Request{Op: table.Get, Key: k, ID: uint64(i)})
		if len(reqs) == cap(reqs) {
			flush()
		}
	}
	flush()
	for {
		nresp, done := h.Flush(resps)
		collect(resps[:nresp])
		if done {
			break
		}
	}
	return matches
}

// BuildRows returns the number of build rows inserted.
func (j *Joiner) BuildRows() int { return j.built }
