package kvserver

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"
)

// scriptedConn is a net.Conn whose reads drain a prebuilt buffer and whose
// writes are discarded. Because every byte is already "on the wire", the
// reader's Buffered() stays true for the whole stream — the worst case for
// batch memory: no natural input-drain flush until EOF, so only the batch
// caps bound per-connection accumulation.
type scriptedConn struct{ in *bytes.Reader }

func (c *scriptedConn) Read(p []byte) (int, error)       { return c.in.Read(p) }
func (c *scriptedConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *scriptedConn) Close() error                     { return nil }
func (c *scriptedConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *scriptedConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *scriptedConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptedConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptedConn) SetWriteDeadline(time.Time) error { return nil }

// TestWriteHeavyBatchBounded regression-tests the input-side batch cap: a
// pipelined write-heavy stream appends almost nothing to the reply buffer
// (memcached noreply sets append zero bytes; RESP SET replies are 5 bytes
// per multi-KB value), so the reply-side high-water mark alone would never
// flush and the parser arena, vbuf, and meta queue would retain the whole
// stream. The stream is 4x inputHighWater; the encoded-value scratch must
// end well under that, proving mid-batch flushes fired.
func TestWriteHeavyBatchBounded(t *testing.T) {
	const valSize = 64 << 10
	sets := 4 * inputHighWater / valSize

	t.Run("mc-noreply", func(t *testing.T) {
		srv := startServer(t, BackendDramhit)
		var in bytes.Buffer
		val := bytes.Repeat([]byte("m"), valSize)
		for i := 0; i < sets; i++ {
			fmt.Fprintf(&in, "set whm-%d 0 0 %d noreply\r\n", i, valSize)
			in.Write(val)
			in.WriteString("\r\n")
		}
		cn := newConn(srv, &scriptedConn{in: bytes.NewReader(in.Bytes())})
		cn.serveMc()
		if got := cap(cn.vbuf); got >= 2*inputHighWater {
			t.Errorf("vbuf grew to %d bytes serving a %d-byte noreply stream; input-side batch cap did not flush", got, in.Len())
		}
		if n := srv.Table().Len(); n != sets {
			t.Errorf("table has %d entries after %d noreply sets", n, sets)
		}
	})

	t.Run("resp-set", func(t *testing.T) {
		srv := startServer(t, BackendDramhit)
		var in []byte
		val := strings.Repeat("r", valSize)
		for i := 0; i < sets; i++ {
			in = respEnc(in, "SET", fmt.Sprintf("whr-%d", i), val)
		}
		cn := newConn(srv, &scriptedConn{in: bytes.NewReader(in)})
		cn.serveRESP()
		if got := cap(cn.vbuf); got >= 2*inputHighWater {
			t.Errorf("vbuf grew to %d bytes serving a %d-byte SET stream; input-side batch cap did not flush", got, len(in))
		}
		if n := srv.Table().Len(); n != sets {
			t.Errorf("table has %d entries after %d sets", n, sets)
		}
	})
}

// TestLongLinesWithinDeclaredLimits pins that the declared protocol limits
// (resp.MaxInline, mctext.MaxLine), not the transport buffer size, bound a
// command line. With a default 4 KB bufio the limits were unreachable: a
// protocol-legal memcached multi-key get (hundreds of 200-byte keys) or a
// long RESP inline command was severed as too long.
func TestLongLinesWithinDeclaredLimits(t *testing.T) {
	srv := startServer(t, BackendDramhit)

	// RESP inline command well past 4 KB: a miss, not a protocol error.
	rc, err := net.Dial("tcp", srv.RespAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	fmt.Fprintf(rc, "GET %s\r\n", strings.Repeat("k", 6000))
	rbr := bufio.NewReader(rc)
	rc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if got, err := readReply(rbr); err != nil || got != "nil" {
		t.Fatalf("6 KB inline GET: got %q, %v; want nil miss", got, err)
	}

	// Protocol-legal memcached multi-key get: 256 keys, ~200 bytes each
	// (a ~51 KB command line). One stored key must come back VALUE, the
	// rest miss silently, END terminates.
	mc, err := net.Dial("tcp", srv.McAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mc.Write([]byte("set mk-hit 0 0 2\r\nhi\r\n"))
	mbr := bufio.NewReader(mc)
	mc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, _ := mbr.ReadString('\n'); line != "STORED\r\n" {
		t.Fatalf("set: %q", line)
	}
	var get bytes.Buffer
	get.WriteString("get mk-hit")
	for i := 0; i < 255; i++ {
		fmt.Fprintf(&get, " miss-%03d-%s", i, strings.Repeat("x", 190))
	}
	get.WriteString("\r\n")
	if get.Len() <= 8<<10 {
		t.Fatalf("test line only %d bytes; meant to exceed the old 8 KB limit", get.Len())
	}
	mc.Write(get.Bytes())
	want := []string{"VALUE mk-hit 0 2\r\n", "hi\r\n", "END\r\n"}
	for _, w := range want {
		line, err := mbr.ReadString('\n')
		if err != nil || line != w {
			t.Fatalf("multi-key get: got %q, %v; want %q", line, err, w)
		}
	}
}

// TestTransientAcceptClassification pins which Accept errors retry (fd
// exhaustion, aborted handshakes, timeouts) versus stop the listener.
func TestTransientAcceptClassification(t *testing.T) {
	transient := []error{
		syscall.EMFILE,
		syscall.ENFILE,
		syscall.ECONNABORTED,
		&net.OpError{Op: "accept", Err: syscall.EMFILE},
	}
	for _, err := range transient {
		if !isTransientAccept(err) {
			t.Errorf("%v should be retried", err)
		}
	}
	if isTransientAccept(net.ErrClosed) {
		t.Error("net.ErrClosed must stop the accept loop, not retry")
	}
}
