package kvserver

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startServer boots a server on loopback ephemeral ports with both
// protocol listeners, torn down with the test.
func startServer(t *testing.T, be Backend, opts ...func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		RespAddr: "127.0.0.1:0",
		McAddr:   "127.0.0.1:0",
		Slots:    4096,
		Backend:  be,
	}
	for _, fn := range opts {
		fn(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestGoldenFixtures replays the committed request/response fixtures over a
// live loopback server and requires the byte-exact reply — framing, CRLFs,
// ordering, everything. Each fixture runs against both backends (identical
// wire behavior is part of the folklore A/B's validity) and in a chunked
// variant that dribbles the request a few bytes per write, exercising
// frames that straddle reads on a real socket.
func TestGoldenFixtures(t *testing.T) {
	cmds, err := filepath.Glob(filepath.Join("testdata", "*.cmd"))
	if err != nil || len(cmds) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, be := range []Backend{BackendDramhit, BackendFolklore} {
		for _, chunked := range []bool{false, true} {
			for _, cmdFile := range cmds {
				name := strings.TrimSuffix(filepath.Base(cmdFile), ".cmd")
				t.Run(fmt.Sprintf("%s/%s/chunked=%v", be, name, chunked), func(t *testing.T) {
					req, err := os.ReadFile(cmdFile)
					if err != nil {
						t.Fatal(err)
					}
					want, err := os.ReadFile(strings.TrimSuffix(cmdFile, ".cmd") + ".reply")
					if err != nil {
						t.Fatal(err)
					}
					srv := startServer(t, be) // fresh keyspace per fixture
					addr := srv.RespAddr()
					if strings.HasPrefix(name, "mc_") {
						addr = srv.McAddr()
					}
					c, err := net.Dial("tcp", addr)
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					if chunked {
						for i := 0; i < len(req); i += 3 {
							end := i + 3
							if end > len(req) {
								end = len(req)
							}
							if _, err := c.Write(req[i:end]); err != nil {
								t.Fatal(err)
							}
							time.Sleep(time.Millisecond)
						}
					} else if _, err := c.Write(req); err != nil {
						t.Fatal(err)
					}
					c.SetReadDeadline(time.Now().Add(5 * time.Second))
					got := make([]byte, len(want))
					if _, err := io.ReadFull(c, got); err != nil {
						t.Fatalf("short reply: %v\ngot so far: %q", err, got)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("reply mismatch\ngot:  %q\nwant: %q", got, want)
					}
					// The server must not have produced anything beyond the
					// golden reply.
					c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
					if n, _ := c.Read(make([]byte, 64)); n != 0 {
						t.Fatalf("server wrote %d unexpected extra bytes", n)
					}
				})
			}
		}
	}
}
