bogus nonsense
version
