set a 1 0 2
AA
set b 2 0 2
BB
get a b missing
delete a
delete a
get a b
