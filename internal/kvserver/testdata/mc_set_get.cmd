set k 7 0 5
hello
get k
