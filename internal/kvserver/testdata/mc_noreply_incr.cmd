set n 0 0 1 noreply
5
incr n 37
decr n 100
incr missing 1
set s 0 0 3 noreply
abc
incr s 1
