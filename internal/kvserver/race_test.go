package kvserver

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// TestConcurrentClientChurn hammers both listeners from many goroutines
// with connection churn and mid-write disconnects. Run under -race (it is
// on the CI race list) this is the server's concurrency safety check: every
// connection owns its handle, so the only shared state is the table, the
// conn registry, and the metric pool.
func TestConcurrentClientChurn(t *testing.T) {
	srv := startServer(t, BackendDramhit)
	const clients = 8
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 25; iter++ {
				if rng.Intn(2) == 0 {
					churnRESP(t, srv.RespAddr(), rng)
				} else {
					churnMc(t, srv.McAddr(), rng)
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func churnRESP(t *testing.T, addr string, rng *rand.Rand) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer c.Close()
	if rng.Intn(4) == 0 {
		// Mid-write disconnect: half a multibulk frame, then hang up. The
		// server must tear the connection down without wedging.
		c.Write([]byte("*3\r\n$3\r\nSET\r\n$5\r\nhal"))
		return
	}
	var wire []byte
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("churn-%d", rng.Intn(64))
		switch rng.Intn(3) {
		case 0:
			wire = respEnc(wire, "SET", k, "v")
		case 1:
			wire = respEnc(wire, "GET", k)
		default:
			wire = respEnc(wire, "DEL", k)
		}
	}
	c.Write(wire)
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < n; i++ {
		if _, err := readReply(br); err != nil {
			t.Errorf("churn reply: %v", err)
			return
		}
	}
}

func churnMc(t *testing.T, addr string, rng *rand.Rand) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer c.Close()
	if rng.Intn(4) == 0 {
		// Disconnect inside a data block.
		c.Write([]byte("set churned 0 0 100\r\npartial"))
		return
	}
	k := fmt.Sprintf("churn-mc-%d", rng.Intn(64))
	fmt.Fprintf(c, "set %s 0 0 2\r\nvv\r\nget %s\r\n", k, k)
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 4; i++ { // STORED, VALUE, vv, END
		if _, err := br.ReadString('\n'); err != nil {
			t.Errorf("mc churn reply: %v", err)
			return
		}
	}
}

// TestCloseDuringInFlight severs the server while clients are mid-batch:
// Close must return promptly (no goroutine waits on a dead client) and the
// clients must observe EOF/reset rather than a hang.
func TestCloseDuringInFlight(t *testing.T) {
	srv := startServer(t, BackendDramhit)
	const clients = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := net.Dial("tcp", srv.RespAddr())
				if err != nil {
					return // listener closed
				}
				var wire []byte
				for i := 0; i < 16; i++ {
					wire = respEnc(wire, "SET", fmt.Sprintf("cd-%d", rng.Intn(32)), "v")
				}
				c.Write(wire)
				c.SetReadDeadline(time.Now().Add(2 * time.Second))
				br := bufio.NewReader(c)
				for i := 0; i < 16; i++ {
					if _, err := readReply(br); err != nil {
						break // server closing underneath us is expected
					}
				}
				c.Close()
			}
		}(int64(g))
	}
	time.Sleep(50 * time.Millisecond) // let traffic build
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with in-flight connections")
	}
	close(stop)
	wg.Wait()

	// A second Close is a no-op, and new dials are refused.
	srv.Close()
	if c, err := net.Dial("tcp", srv.RespAddr()); err == nil {
		c.Close()
		t.Fatal("dial succeeded after Close")
	}
}
