// Package kvserver is the network front-end over the DRAMHiT table: a TCP
// server speaking RESP (GET/SET/DEL/INCR/PING) and the memcached text
// protocol (get/gets/set/delete/incr/decr, noreply) against one shared
// bucket-layout table.
//
// The design point is that network batching composes with the table's
// prefetch-window batching. Each connection is one goroutine owning one
// table handle; every fully-buffered request on the wire is parsed and
// submitted into the handle's byte pipeline (SubmitBytes — home bucket line
// prefetched at parse time), and only when the connection's input drains
// does the handle FlushBytes. Completions fire in submission order, so each
// reply is appended to the connection's write buffer straight from the
// completion callback: a client that pipelines N requests gets its N
// replies computed under one prefetch window and written in one syscall,
// with no per-op channels and no reorder buffer anywhere.
//
// Both protocols share one keyspace. A stored record is a 4-byte
// little-endian flags word (memcached metadata; RESP writes zero) followed
// by the payload, so values round-trip across protocols.
package kvserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	idramhit "dramhit/internal/dramhit"
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// Backend selects the execution model serving requests.
type Backend int

const (
	// BackendDramhit pipelines each wire batch through the handle's async
	// byte pipeline: bucket lines prefetched at submit, resolved at flush.
	BackendDramhit Backend = iota
	// BackendFolklore answers each request with one synchronous engine call
	// as it is parsed — the folklore execution model on DRAMHiT's kernel
	// (the same degraded mode the governor's direct actuation uses). The
	// server-ab experiment measures the gap between the two.
	BackendFolklore
)

// ParseBackend maps "dramhit" (or "") and "folklore" to Backend values.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "dramhit":
		return BackendDramhit, nil
	case "folklore":
		return BackendFolklore, nil
	}
	return 0, fmt.Errorf("kvserver: unknown backend %q (want dramhit or folklore)", s)
}

func (b Backend) String() string {
	if b == BackendFolklore {
		return "folklore"
	}
	return "dramhit"
}

// Config parameterizes a server.
type Config struct {
	// RespAddr is the RESP listener address (e.g. ":6379", "127.0.0.1:0");
	// empty disables the RESP listener.
	RespAddr string
	// McAddr is the memcached-text listener address; empty disables it.
	McAddr string
	// Slots sizes the table (0 selects a small default; the bucket layout
	// resizes itself, so this is a starting point, not a capacity cap).
	Slots uint64
	// Window is the per-connection prefetch-window depth (0 = table default).
	Window int
	// Backend selects pipelined (dramhit) or synchronous (folklore) serving.
	Backend Backend
	// Obs, when non-nil, exports the serving metrics: per-op-class latency
	// histograms (parse-to-completion) under a small pool of "server-w<i>"
	// workers, and connection/table gauges under the "server" pull source.
	// The table itself is created unobserved — per-connection handles would
	// otherwise grow the registry without bound under connection churn.
	Obs *obs.Registry
	// ObsWorkers sizes the shared worker pool (0 = 8). Connections hash onto
	// pool shards; Worker histograms and counters are atomic, so sharing is
	// safe — the pool only bounds metric cardinality.
	ObsWorkers int
}

// Server is a running KV front-end. Create with New, stop with Close.
type Server struct {
	cfg Config
	tbl *idramhit.Table

	respLn net.Listener
	mcLn   net.Listener

	pool []*obs.Worker // nil when Config.Obs is nil

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	closed  atomic.Bool
	connSeq atomic.Uint64

	curResp, totResp atomic.Int64
	curMc, totMc     atomic.Int64
}

// New builds the table, binds the configured listeners, and starts serving.
// At least one of RespAddr/McAddr must be set.
func New(cfg Config) (*Server, error) {
	if cfg.RespAddr == "" && cfg.McAddr == "" {
		return nil, fmt.Errorf("kvserver: no listener configured")
	}
	if cfg.Slots == 0 {
		cfg.Slots = 1 << 16
	}
	s := &Server{
		cfg: cfg,
		tbl: idramhit.New(idramhit.Config{
			Slots:          cfg.Slots,
			PrefetchWindow: cfg.Window,
			Layout:         table.LayoutBucket,
		}),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Obs != nil {
		n := cfg.ObsWorkers
		if n <= 0 {
			n = 8
		}
		s.pool = make([]*obs.Worker, n)
		for i := range s.pool {
			s.pool[i] = cfg.Obs.Worker(fmt.Sprintf("server-w%d", i))
		}
		cfg.Obs.AddSource("server", s.collect)
	}
	if cfg.RespAddr != "" {
		ln, err := net.Listen("tcp", cfg.RespAddr)
		if err != nil {
			return nil, err
		}
		s.respLn = ln
	}
	if cfg.McAddr != "" {
		ln, err := net.Listen("tcp", cfg.McAddr)
		if err != nil {
			if s.respLn != nil {
				s.respLn.Close()
			}
			return nil, err
		}
		s.mcLn = ln
	}
	if s.respLn != nil {
		s.wg.Add(1)
		go s.acceptLoop(s.respLn, protoResp)
	}
	if s.mcLn != nil {
		s.wg.Add(1)
		go s.acceptLoop(s.mcLn, protoMc)
	}
	return s, nil
}

// RespAddr returns the bound RESP listener address ("" if disabled).
func (s *Server) RespAddr() string {
	if s.respLn == nil {
		return ""
	}
	return s.respLn.Addr().String()
}

// McAddr returns the bound memcached listener address ("" if disabled).
func (s *Server) McAddr() string {
	if s.mcLn == nil {
		return ""
	}
	return s.mcLn.Addr().String()
}

// Table exposes the underlying table (tests inspect it directly).
func (s *Server) Table() *idramhit.Table { return s.tbl }

// collect is the "server" pull source: connection gauges plus table size.
func (s *Server) collect() map[string]float64 {
	return map[string]float64{
		"conns_resp_open":     float64(s.curResp.Load()),
		"conns_resp_total":    float64(s.totResp.Load()),
		"conns_mc_open":       float64(s.curMc.Load()),
		"conns_mc_total":      float64(s.totMc.Load()),
		"table_entries":       float64(s.tbl.Len()),
		"backend_is_folklore": float64(s.cfg.Backend),
	}
}

type proto int

const (
	protoResp proto = iota
	protoMc
)

func (s *Server) acceptLoop(ln net.Listener, p proto) {
	defer s.wg.Done()
	var delay time.Duration
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return // listener closed by Close
			}
			// Transient failures (fd exhaustion, handshakes aborted before
			// accept, timeouts) must not permanently kill the listener while
			// the process keeps running and reporting healthy gauges: back
			// off and retry; only unknown errors stop the loop.
			if isTransientAccept(err) {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				time.Sleep(delay)
				continue
			}
			return
		}
		delay = 0
		// Register and re-check closed under one critical section: Close
		// sweeps s.conns under s.mu after setting closed, so every accepted
		// conn is either in the map for that sweep or closed right here —
		// never registered after the sweep (which would leave Close blocked
		// in wg.Wait until the client went away on its own).
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(c, p)
	}
}

// isTransientAccept classifies Accept errors worth retrying.
func isTransientAccept(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EINTR)
}

func (s *Server) serveConn(c net.Conn, p proto) {
	defer s.wg.Done()
	cur, tot := &s.curResp, &s.totResp
	if p == protoMc {
		cur, tot = &s.curMc, &s.totMc
	}
	cur.Add(1)
	tot.Add(1)
	cn := newConn(s, c)
	if p == protoResp {
		cn.serveRESP()
	} else {
		cn.serveMc()
	}
	cur.Add(-1)
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Close stops the listeners, severs every open connection, and waits for
// the connection goroutines to drain. Safe to call once.
func (s *Server) Close() error {
	// closed is set under s.mu so the sweep below and acceptLoop's
	// register-or-close check are totally ordered: a conn registered before
	// the sweep is swept; one registered after observes closed and is closed
	// by acceptLoop itself.
	s.mu.Lock()
	s.closed.Store(true)
	s.mu.Unlock()
	if s.respLn != nil {
		s.respLn.Close()
	}
	if s.mcLn != nil {
		s.mcLn.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close() // unblocks handler goroutines parked in Read
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
