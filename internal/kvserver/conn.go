package kvserver

import (
	"net"
	"time"

	idramhit "dramhit/internal/dramhit"
	"dramhit/internal/mctext"
	"dramhit/internal/obs"
	"dramhit/internal/resp"
	"dramhit/internal/table"
)

// Reply kinds: what the completion callback appends for each submitted
// request. The meta queue is strictly FIFO-parallel to submissions, which
// is sound because the byte pipeline completes in submission order.
const (
	kRespGet = iota
	kRespSet
	kRespDel
	kMcGet     // one key of a memcached get: VALUE block on hit, nothing on miss
	kMcGetLast // last key: as kMcGet, then END
	kMcSet
	kMcSetQuiet
	kMcDel
	kMcDelQuiet
)

// pmeta carries the per-request reply context from submit to completion.
type pmeta struct {
	key   []byte // mc VALUE lines echo the key; aliases the parser arena
	start int64  // latency stamp (0 when metrics are off)
	kind  uint8
}

// conn is the per-connection state shared by both protocol loops: one table
// handle (single-goroutine, like the connection), the reply write buffer,
// a batch-stable scratch arena for encoded values, and the meta queue.
type conn struct {
	s *Server
	c net.Conn
	h *idramhit.Handle
	w *obs.Worker // pool shard (shared, atomic); nil when metrics are off

	wbuf []byte  // replies accumulated for the current wire batch
	vbuf []byte  // encoded flags+payload records, stable until batch flush
	meta []pmeta // submit-order reply contexts
	mi   int     // completion cursor into meta

	async bool // BackendDramhit: pipeline; else synchronous per-op calls
}

func newConn(s *Server, c net.Conn) *conn {
	cn := &conn{
		s:     s,
		c:     c,
		h:     s.tbl.NewHandle(),
		async: s.cfg.Backend == BackendDramhit,
	}
	if s.pool != nil {
		cn.w = s.pool[int(s.connSeq.Add(1))%len(s.pool)]
	}
	if cn.async {
		cn.h.OnByteComplete(cn.complete)
	}
	return cn
}

// record layout: 4-byte little-endian flags, then the payload.

func appendRecord(dst []byte, flags uint32, payload []byte) []byte {
	dst = append(dst, byte(flags), byte(flags>>8), byte(flags>>16), byte(flags>>24))
	return append(dst, payload...)
}

// splitRecord is defensive about short records (a raced mc incr can store a
// bare re-encode): anything under 4 bytes reads as flags 0, payload whole.
func splitRecord(rec []byte) (flags uint32, payload []byte) {
	if len(rec) < 4 {
		return 0, rec
	}
	return uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24,
		rec[4:]
}

// parseUint parses a non-empty decimal uint64, rejecting junk and overflow.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// submit routes one Get/Put/Delete through the configured backend. Under
// dramhit it enters the async byte pipeline (reply appended at completion,
// possibly after more submissions); under folklore it executes and replies
// immediately. key/val must stay valid until the batch flush (they alias
// the parser arena and vbuf, both of which are released at flushWrite).
func (cn *conn) submit(op table.Op, kind uint8, key, val []byte) {
	m := pmeta{kind: kind, key: key}
	if cn.w != nil {
		m.start = time.Now().UnixNano()
	}
	cn.meta = append(cn.meta, m)
	if cn.async {
		cn.h.SubmitBytes(op, uint64(len(cn.meta)-1), key, val)
		return
	}
	var v []byte
	var found bool
	switch op {
	case table.Get:
		v, found = cn.h.GetBytes(key)
	case table.Put:
		found = cn.h.PutBytes(key, val)
	default:
		found = cn.h.DeleteBytes(key)
	}
	cn.complete(idramhit.ByteCompletion{ID: uint64(len(cn.meta) - 1), Op: op, Value: v, Found: found})
}

// complete consumes the next meta entry and appends its wire reply. It is
// the byte pipeline's completion callback (and the folklore path calls it
// inline with a synthesized completion).
func (cn *conn) complete(cc idramhit.ByteCompletion) {
	m := &cn.meta[cn.mi]
	cn.mi++
	switch m.kind {
	case kRespGet:
		if cc.Found {
			_, payload := splitRecord(cc.Value)
			cn.wbuf = resp.AppendBulk(cn.wbuf, payload)
		} else {
			cn.wbuf = resp.AppendNil(cn.wbuf)
		}
	case kRespSet:
		cn.wbuf = resp.AppendSimple(cn.wbuf, "OK")
	case kRespDel:
		n := int64(0)
		if cc.Found {
			n = 1
		}
		cn.wbuf = resp.AppendInt(cn.wbuf, n)
	case kMcGet, kMcGetLast:
		if cc.Found {
			flags, payload := splitRecord(cc.Value)
			cn.wbuf = mctext.AppendValue(cn.wbuf, m.key, flags, payload)
		}
		if m.kind == kMcGetLast {
			cn.wbuf = mctext.AppendEnd(cn.wbuf)
		}
	case kMcSet:
		cn.wbuf = mctext.AppendLine(cn.wbuf, "STORED")
	case kMcDel:
		if cc.Found {
			cn.wbuf = mctext.AppendLine(cn.wbuf, "DELETED")
		} else {
			cn.wbuf = mctext.AppendLine(cn.wbuf, "NOT_FOUND")
		}
	default: // kMcSetQuiet, kMcDelQuiet: noreply
	}
	if cn.w != nil {
		cn.countOp(cc.Op, cc.Found, m.start)
	}
}

// countOp records the request into the connection's pool shard: completion
// counters plus parse-to-completion latency in the per-op-class histogram.
// The shard is shared across connections; counters and histograms are
// atomic, so plain Add/Record compose.
func (cn *conn) countOp(op table.Op, found bool, start int64) {
	hit := found
	switch op {
	case table.Get:
		cn.w.Inc(obs.CGets)
	case table.Put:
		cn.w.Inc(obs.CPuts)
		hit = true
	case table.Upsert:
		cn.w.Inc(obs.CUpserts)
		hit = true
	default:
		cn.w.Inc(obs.CDeletes)
	}
	if found && (op == table.Get || op == table.Delete) {
		cn.w.Inc(obs.CHits)
	}
	if start != 0 {
		cn.w.Op[obs.OpClass(op, hit)].Record(uint64(time.Now().UnixNano() - start))
	}
}

// barrier drains the async pipeline so a synchronous reply (PING, INCR, a
// protocol error) is appended after every earlier request's reply — the
// total order the wire demands.
func (cn *conn) barrier() {
	if cn.async && cn.h.PendingBytes() > 0 {
		cn.h.FlushBytes()
	}
}

// flushWrite ends the wire batch: drains the pipeline, writes the
// accumulated replies in one syscall, and resets the batch-lifetime
// buffers. After it returns, nothing references the parser arena.
func (cn *conn) flushWrite() error {
	cn.barrier()
	cn.meta = cn.meta[:0]
	cn.mi = 0
	cn.vbuf = cn.vbuf[:0]
	if len(cn.wbuf) == 0 {
		return nil
	}
	_, err := cn.c.Write(cn.wbuf)
	cn.wbuf = cn.wbuf[:0]
	return err
}

// Batch caps. Crossing any of them forces an early batch flush (and parser
// arena release at the call site). wbufHighWater alone is not enough: a
// write-heavy pipelined stream (memcached noreply sets, RESP SETs whose
// reply is a 5-byte +OK) appends almost nothing to wbuf while the parser
// arena, vbuf and meta grow by ~request size per request — without an
// input-side cap that is a remotely triggerable OOM.
const (
	// wbufHighWater caps reply accumulation mid-batch (a client that
	// pipelines without reading would otherwise grow wbuf unboundedly).
	wbufHighWater = 64 << 10
	// inputHighWater caps parse-side accumulation: parser arena plus the
	// connection's encoded-value scratch (vbuf).
	inputHighWater = 4 << 20
	// batchMaxOps caps the meta queue (requests per wire batch).
	batchMaxOps = 4096
)

// batchFull reports whether the current wire batch crossed a reply-side or
// input-side cap and must flush before parsing more. arenaBytes is the
// protocol reader's ArenaBytes().
func (cn *conn) batchFull(arenaBytes int) bool {
	return len(cn.wbuf) >= wbufHighWater ||
		arenaBytes+len(cn.vbuf) >= inputHighWater ||
		len(cn.meta) >= batchMaxOps
}

// upsertNumeric is the shared INCR/DECR core: atomically applies delta
// (subtracting when negative is set, clamped at zero memcached-style) to
// the record's numeric payload, preserving flags. snap is the caller's
// pre-read of the record (both protocols decide existence/numericness from
// it); if the record vanishes mid-Mutate the snapshot seeds the re-create,
// which linearizes the increment just before the racing delete.
func (cn *conn) upsertNumeric(key []byte, snap []byte, delta uint64, negative bool) (uint64, bool) {
	snapFlags, snapPay := splitRecord(snap)
	cur, ok := parseUint(snapPay)
	if !ok {
		return 0, false
	}
	var out uint64
	var scratch [28]byte // 4 flags + 20 digits; engine copies during Mutate
	cn.h.UpsertBytes(key, func(old []byte, present bool) []byte {
		flags, cur2 := snapFlags, cur
		if present {
			f, pay := splitRecord(old)
			if n, ok2 := parseUint(pay); ok2 {
				flags, cur2 = f, n
			}
		}
		switch {
		case !negative:
			out = cur2 + delta // wraps at 2^64, like memcached
		case delta > cur2:
			out = 0 // memcached decr clamps at zero
		default:
			out = cur2 - delta
		}
		b := scratch[:0]
		b = appendRecord(b, flags, nil)
		b = appendUintDec(b, out)
		return b
	})
	return out, true
}

func appendUintDec(b []byte, n uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
