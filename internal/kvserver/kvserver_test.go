package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"testing"
	"time"

	"dramhit/internal/obs"
)

// respEnc appends one multibulk command in client framing.
func respEnc(b []byte, args ...string) []byte {
	b = append(b, '*')
	b = strconv.AppendInt(b, int64(len(args)), 10)
	b = append(b, '\r', '\n')
	for _, a := range args {
		b = append(b, '$')
		b = strconv.AppendInt(b, int64(len(a)), 10)
		b = append(b, '\r', '\n')
		b = append(b, a...)
		b = append(b, '\r', '\n')
	}
	return b
}

// readReply parses one RESP reply into a canonical string: "+OK", ":3",
// "-ERR ...", "$<data>", or "nil".
func readReply(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 3 {
		return "", fmt.Errorf("short reply line %q", line)
	}
	body := line[1 : len(line)-2]
	switch line[0] {
	case '+', ':':
		return line[:1] + body, nil
	case '-':
		return "-" + body, nil
	case '$':
		n, err := strconv.Atoi(body)
		if err != nil {
			return "", fmt.Errorf("bad bulk header %q", line)
		}
		if n < 0 {
			return "nil", nil
		}
		data := make([]byte, n+2)
		if _, err := io.ReadFull(br, data); err != nil {
			return "", err
		}
		return "$" + string(data[:n]), nil
	}
	return "", fmt.Errorf("unexpected reply type %q", line)
}

// TestOracleRandomOps drives random pipelined batches over a live RESP
// connection and checks every reply against a reference map mutated in the
// same order — including pipelined same-key sequences (SET/GET/DEL of one
// key inside one wire batch), which exercise the FIFO completion contract
// end to end. Runs against both backends.
func TestOracleRandomOps(t *testing.T) {
	for _, be := range []Backend{BackendDramhit, BackendFolklore} {
		t.Run(be.String(), func(t *testing.T) {
			srv := startServer(t, be)
			c, err := net.Dial("tcp", srv.RespAddr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			br := bufio.NewReader(c)

			rng := rand.New(rand.NewSource(99))
			ref := map[string]string{}
			key := func() string { return fmt.Sprintf("k%02d", rng.Intn(40)) }

			for round := 0; round < 150; round++ {
				nops := 1 + rng.Intn(32)
				var wire []byte
				var want []string
				for i := 0; i < nops; i++ {
					k := key()
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // GET
						wire = respEnc(wire, "GET", k)
						if v, ok := ref[k]; ok {
							want = append(want, "$"+v)
						} else {
							want = append(want, "nil")
						}
					case 4, 5, 6: // SET
						v := fmt.Sprintf("val-%d-%d", round, i)
						wire = respEnc(wire, "SET", k, v)
						ref[k] = v
						want = append(want, "+OK")
					case 7: // DEL
						wire = respEnc(wire, "DEL", k)
						if _, ok := ref[k]; ok {
							want = append(want, ":1")
						} else {
							want = append(want, ":0")
						}
						delete(ref, k)
					case 8: // INCR (numeric iff the ref value parses)
						wire = respEnc(wire, "INCR", k)
						if v, ok := ref[k]; !ok {
							ref[k] = "1"
							want = append(want, ":1")
						} else if n, err := strconv.ParseUint(v, 10, 64); err == nil {
							ref[k] = strconv.FormatUint(n+1, 10)
							want = append(want, ":"+ref[k])
						} else {
							want = append(want, "-err")
						}
					default: // PING keeps a non-table op inside the batch
						wire = respEnc(wire, "PING")
						want = append(want, "+PONG")
					}
				}
				if _, err := c.Write(wire); err != nil {
					t.Fatal(err)
				}
				c.SetReadDeadline(time.Now().Add(5 * time.Second))
				for i, w := range want {
					got, err := readReply(br)
					if err != nil {
						t.Fatalf("round %d reply %d: %v", round, i, err)
					}
					if w == "-err" {
						if got[0] != '-' {
							t.Fatalf("round %d reply %d: got %q, want an error", round, i, got)
						}
						continue
					}
					if got != w {
						t.Fatalf("round %d reply %d: got %q, want %q", round, i, got, w)
					}
				}
			}
			if srv.Table().Len() != len(ref) {
				t.Fatalf("table has %d entries, reference %d", srv.Table().Len(), len(ref))
			}
		})
	}
}

// TestObsSurface checks the serving metrics: per-op-class latency recorded
// into the pool workers and the "server" pull source's connection gauges.
func TestObsSurface(t *testing.T) {
	reg := obs.New()
	srv := startServer(t, BackendDramhit, func(c *Config) { c.Obs = reg; c.ObsWorkers = 2 })
	c, err := net.Dial("tcp", srv.RespAddr())
	if err != nil {
		t.Fatal(err)
	}
	var wire []byte
	wire = respEnc(wire, "SET", "k", "v")
	wire = respEnc(wire, "GET", "k")
	wire = respEnc(wire, "GET", "missing")
	wire = respEnc(wire, "DEL", "k")
	wire = respEnc(wire, "INCR", "n")
	c.Write(wire)
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 5; i++ {
		if _, err := readReply(br); err != nil {
			t.Fatal(err)
		}
	}

	classes := map[int]uint64{}
	var puts, gets uint64
	for _, w := range reg.Workers() {
		for cls := 0; cls < obs.NumOpClasses; cls++ {
			classes[cls] += w.Op[cls].Count()
		}
		puts += w.Counter(obs.CPuts)
		gets += w.Counter(obs.CGets)
	}
	for _, cls := range []int{obs.OpGetHit, obs.OpGetMiss, obs.OpPut, obs.OpUpsert, obs.OpDeleteHit} {
		if classes[cls] == 0 {
			t.Errorf("op class %s recorded no latency samples", obs.OpClassNames[cls])
		}
	}
	if puts != 1 || gets != 2 {
		t.Errorf("pool counters: puts=%d gets=%d, want 1/2", puts, gets)
	}

	var src func() map[string]float64
	for _, s := range reg.Sources() {
		if s.Name == "server" {
			src = s.Collect
		}
	}
	if src == nil {
		t.Fatal(`no "server" pull source registered`)
	}
	m := src()
	if m["conns_resp_open"] != 1 || m["conns_resp_total"] != 1 {
		t.Errorf("conn gauges: %+v", m)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for src()["conns_resp_open"] != 0 {
		if time.Now().After(deadline) {
			t.Fatal("conns_resp_open never returned to 0 after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrossProtocol pins the shared-keyspace record format: a value set via
// memcached (with flags) reads back via RESP as the bare payload, and a
// RESP-set value reads via memcached with flags 0.
func TestCrossProtocol(t *testing.T) {
	srv := startServer(t, BackendDramhit)

	mc, err := net.Dial("tcp", srv.McAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mc.Write([]byte("set shared 42 0 5\r\nhello\r\n"))
	mcbr := bufio.NewReader(mc)
	mc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, _ := mcbr.ReadString('\n'); line != "STORED\r\n" {
		t.Fatalf("mc set: %q", line)
	}

	rc, err := net.Dial("tcp", srv.RespAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rc.Write(respEnc(nil, "GET", "shared"))
	rbr := bufio.NewReader(rc)
	rc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if got, _ := readReply(rbr); got != "$hello" {
		t.Fatalf("RESP read of mc-set key: %q", got)
	}

	rc.Write(respEnc(nil, "SET", "shared2", "world"))
	if got, _ := readReply(rbr); got != "+OK" {
		t.Fatalf("RESP set: %q", got)
	}
	mc.Write([]byte("get shared2\r\n"))
	if line, _ := mcbr.ReadString('\n'); line != "VALUE shared2 0 5\r\n" {
		t.Fatalf("mc read of RESP-set key: %q", line)
	}
}
