package kvserver

import (
	"io"
	"time"

	"dramhit/internal/resp"
	"dramhit/internal/table"
)

// respZeroRecord seeds a RESP INCR on an absent key: redis treats missing
// as "0", so the increment creates the key at 1.
var respZeroRecord = []byte{0, 0, 0, 0, '0'}

// serveRESP is the RESP connection loop: parse every fully-buffered command
// into the batch, flush (pipeline drain + one write syscall) when the input
// would block. The parser arena is released only at batch boundaries, after
// every submitted key/value stopped being referenced.
func (cn *conn) serveRESP() {
	r := resp.NewReader(cn.c)
	for {
		if !r.Buffered() {
			if cn.flushWrite() != nil {
				return
			}
			r.Release()
		}
		cmd, err := r.ReadCommand()
		if err != nil {
			if err != io.EOF {
				// Protocol damage (bad framing, oversized bulk, cut frame):
				// best-effort error reply after pending replies, then sever —
				// the stream position is unrecoverable.
				cn.barrier()
				cn.wbuf = resp.AppendError(cn.wbuf, "ERR Protocol error: "+err.Error())
				cn.flushWrite()
			}
			return
		}
		if !cn.dispatchRESP(cmd) {
			cn.flushWrite()
			return
		}
		if cn.batchFull(r.ArenaBytes()) {
			if cn.flushWrite() != nil {
				return
			}
			r.Release()
		}
	}
}

// dispatchRESP executes one command; false closes the connection (QUIT).
func (cn *conn) dispatchRESP(cmd resp.Command) bool {
	if len(cmd.Args) == 0 {
		return true
	}
	name := cmd.Args[0]
	switch {
	case eqFold(name, "GET"):
		if len(cmd.Args) != 2 {
			return cn.respArity("get")
		}
		cn.submit(table.Get, kRespGet, cmd.Args[1], nil)
	case eqFold(name, "SET"):
		if len(cmd.Args) != 3 {
			return cn.respArity("set")
		}
		start := len(cn.vbuf)
		cn.vbuf = appendRecord(cn.vbuf, 0, cmd.Args[2])
		cn.submit(table.Put, kRespSet, cmd.Args[1], cn.vbuf[start:])
	case eqFold(name, "DEL"):
		if len(cmd.Args) != 2 {
			return cn.respArity("del")
		}
		cn.submit(table.Delete, kRespDel, cmd.Args[1], nil)
	case eqFold(name, "INCR"):
		if len(cmd.Args) != 2 {
			return cn.respArity("incr")
		}
		// Read-modify-writes run synchronously (the byte pipeline excludes
		// Upsert); the barrier keeps the reply stream request-ordered.
		cn.barrier()
		var start int64
		if cn.w != nil {
			start = time.Now().UnixNano()
		}
		key := cmd.Args[1]
		snap, ok := cn.h.GetBytes(key)
		if !ok {
			snap = respZeroRecord
		}
		if n, numeric := cn.upsertNumeric(key, snap, 1, false); numeric {
			cn.wbuf = resp.AppendInt(cn.wbuf, int64(n))
		} else {
			cn.wbuf = resp.AppendError(cn.wbuf, "ERR value is not an integer or out of range")
		}
		if cn.w != nil {
			cn.countOp(table.Upsert, true, start)
		}
	case eqFold(name, "PING"):
		cn.barrier()
		if len(cmd.Args) == 2 {
			cn.wbuf = resp.AppendBulk(cn.wbuf, cmd.Args[1])
		} else {
			cn.wbuf = resp.AppendSimple(cn.wbuf, "PONG")
		}
	case eqFold(name, "QUIT"):
		cn.barrier()
		cn.wbuf = resp.AppendSimple(cn.wbuf, "OK")
		return false
	default:
		cn.barrier()
		cn.wbuf = resp.AppendError(cn.wbuf, "ERR unknown command '"+string(name)+"'")
	}
	return true
}

// respArity appends the redis wrong-arity error; the connection stays up.
func (cn *conn) respArity(name string) bool {
	cn.barrier()
	cn.wbuf = resp.AppendError(cn.wbuf, "ERR wrong number of arguments for '"+name+"' command")
	return true
}

// eqFold reports whether b equals the (uppercase) literal, ASCII
// case-insensitively, without allocating.
func eqFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}
