package kvserver

import (
	"errors"
	"io"
	"time"

	"dramhit/internal/mctext"
	"dramhit/internal/table"
)

// serveMc is the memcached-text connection loop: same batch discipline as
// serveRESP. Unknown verbs resynchronize ("ERROR", keep the connection);
// structurally damaged streams get a CLIENT_ERROR and are severed.
func (cn *conn) serveMc() {
	r := mctext.NewReader(cn.c)
	for {
		if !r.Buffered() {
			if cn.flushWrite() != nil {
				return
			}
			r.Release()
		}
		req, err := r.ReadRequest()
		if err != nil {
			if errors.Is(err, mctext.ErrBadCommand) {
				// The reader consumed exactly the offending line.
				cn.barrier()
				cn.wbuf = mctext.AppendLine(cn.wbuf, "ERROR")
				continue
			}
			if err != io.EOF {
				cn.barrier()
				cn.wbuf = mctext.AppendClientError(cn.wbuf, mcErrText(err))
				cn.flushWrite()
			}
			return
		}
		if !cn.dispatchMc(req) {
			cn.flushWrite()
			return
		}
		if cn.batchFull(r.ArenaBytes()) {
			if cn.flushWrite() != nil {
				return
			}
			r.Release()
		}
	}
}

func mcErrText(err error) string {
	if errors.Is(err, mctext.ErrBadData) {
		return "bad data chunk"
	}
	return err.Error()
}

// dispatchMc executes one request; false closes the connection (quit).
func (cn *conn) dispatchMc(req mctext.Request) bool {
	switch req.Verb {
	case mctext.Get, mctext.Gets:
		// One pipeline submission per key; misses emit nothing and the last
		// key's completion appends the END terminator — completion order is
		// submission order, so END always lands after every VALUE block.
		for i, k := range req.Keys {
			kind := uint8(kMcGet)
			if i == len(req.Keys)-1 {
				kind = kMcGetLast
			}
			cn.submit(table.Get, kind, k, nil)
		}
	case mctext.Set:
		start := len(cn.vbuf)
		cn.vbuf = appendRecord(cn.vbuf, req.Flags, req.Data)
		kind := uint8(kMcSet)
		if req.NoReply {
			kind = kMcSetQuiet
		}
		cn.submit(table.Put, kind, req.Key, cn.vbuf[start:])
	case mctext.Delete:
		kind := uint8(kMcDel)
		if req.NoReply {
			kind = kMcDelQuiet
		}
		cn.submit(table.Delete, kind, req.Key, nil)
	case mctext.Incr, mctext.Decr:
		cn.barrier()
		var start int64
		if cn.w != nil {
			start = time.Now().UnixNano()
		}
		snap, ok := cn.h.GetBytes(req.Key)
		switch {
		case !ok:
			// memcached incr/decr never creates the key.
			if !req.NoReply {
				cn.wbuf = mctext.AppendLine(cn.wbuf, "NOT_FOUND")
			}
		default:
			n, numeric := cn.upsertNumeric(req.Key, snap, req.Delta, req.Verb == mctext.Decr)
			switch {
			case !numeric && !req.NoReply:
				cn.wbuf = mctext.AppendClientError(cn.wbuf,
					"cannot increment or decrement non-numeric value")
			case numeric && !req.NoReply:
				cn.wbuf = mctext.AppendUint(cn.wbuf, n)
			}
			if numeric && cn.w != nil {
				cn.countOp(table.Upsert, true, start)
			}
		}
	case mctext.Version:
		cn.barrier()
		cn.wbuf = mctext.AppendLine(cn.wbuf, "VERSION dramhit-1.0")
	case mctext.Quit:
		return false
	}
	return true
}
