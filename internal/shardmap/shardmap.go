// Package shardmap scales past one table: a horizontal shard router over N
// independent table instances, with online re-sharding — live shard splits
// and merges that never stop the world.
//
// Routing is range-of-hash on a dedicated selector hash (hashfn.Shard64, a
// splitmix64-family bijection): a key belongs to the shard owning the top
// `bits` bits of its selector hash. The selector's constant family is
// disjoint from the in-table probe hashes (City64/CRC64), so the shard
// coordinate and the home-bucket coordinate are statistically independent —
// sharding cannot create correlated per-shard bucket hotspots (pinned by
// TestShardSelectorIndependence in internal/hashfn).
//
// The directory is extendible-hashing style: 2^depth pointers, where a shard
// with local depth `bits` ≤ depth covers a contiguous power-of-two-aligned
// run of 2^(depth-bits) entries. A split doubles one shard without touching
// the others; the directory itself doubles only when the split shard was
// already at global depth, and that doubling is an O(2^depth) pointer copy
// performed while pre-building the post-swap directory — never on the op
// path.
//
// Re-sharding reuses the incremental migration machinery PR 5 proved for
// in-table resize, generalized across shards: a window publishes a
// resharding descriptor behind the state pointer, every subsequent operation
// on the covered shard helps by claiming one chunk of source slots (CAS
// unclaimed→busy) and scattering its live entries to their destination
// shards with folklore.MigrateRangeTo — publish in the destination, then
// retire the source slot with table.MovedKey. Readers on the covered shard
// go old-then-new; writers relocate their key's source chunk before writing
// the destination (the anti-resurrection rule); the swap is one state-pointer
// CAS once the last chunk completes. Operations on uncovered shards are
// untouched — they pay one pointer compare.
//
// There are two faces: Map is the synchronous table.Map router over folklore
// shards (the re-shardable one — folklore's slot layout carries the MovedKey
// protocol); Batched (batched.go) routes the batched asynchronous Submit
// interface over N dramhit instances with per-shard handles, so prefetch
// windows, combining and the governor all stay per-shard.
package shardmap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/folklore"
	"dramhit/internal/hashfn"
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// DefaultMaxFill is the per-shard fill factor that triggers an automatic
// split — the same 0.75 the in-table resize uses, for the same reason.
const DefaultMaxFill = 0.75

// DefaultChunkSlots is the number of source-shard slots one helping
// operation migrates; it bounds the worst-case latency any operation pays
// during a split to one chunk scatter.
const DefaultChunkSlots = 512

// DefaultMaxDepth caps a shard's local depth (2^20 shards is far beyond any
// useful configuration; the cap turns a pathological never-relieving split
// loop into an honest table-full report).
const DefaultMaxDepth = 20

// minShardSlots floors a shard table's capacity.
const minShardSlots = 16

// shard is one routing target: a folklore table owning every key whose
// selector hash starts with pfx (bits wide, taken from the top).
type shard struct {
	id   uint64 // creation sequence; stable identity for metrics labels
	bits uint   // local depth
	pfx  uint64 // owned selector prefix, right-aligned in the low `bits` bits
	tbl  *folklore.Table
	ops  *obs.ShardedCounter // completed ops; nil unless observing
}

func (sh *shard) opsInc(hint uint64) {
	if sh.ops != nil {
		sh.ops.Inc(hint)
	}
}

// dirState is one generation of the routing directory. A fresh value is
// published for every transition (window install and swap), so the pointer
// doubles as the generation identity the swap CAS keys on — exactly the
// state{cur,mig} pattern of internal/growt, lifted from slots to shards.
type dirState struct {
	depth uint
	dir   []*shard    // 1<<depth entries
	mig   *resharding // nil outside a re-sharding window
}

// slot returns the directory index for a selector hash.
func (st *dirState) slot(h uint64) uint64 {
	return h >> (64 - st.depth) // depth 0 ⇒ shift 64 ⇒ index 0
}

// distinct iterates the directory's distinct shards in prefix order. A
// shard's directory run is contiguous, so deduplication is one pointer
// compare against the previous entry.
func (st *dirState) distinct(fn func(*shard)) {
	var prev *shard
	for _, sh := range st.dir {
		if sh == prev {
			continue
		}
		prev = sh
		fn(sh)
	}
}

// Map is the synchronous sharded hash table. All methods are safe for
// concurrent use.
type Map struct {
	// gate is the window install barrier, not an operation lock: operations
	// hold the read side for their duration, a re-sharding takes the write
	// side only to publish a pre-built window — the same O(1) exclusive
	// acquisition that growt's resize proved.
	gate     sync.RWMutex
	st       atomic.Pointer[dirState]
	sel      func(uint64) uint64
	maxFill  float64
	chunk    uint64
	maxDepth uint

	nextID atomic.Uint64
	// installing single-flights window construction: one re-sharding at a
	// time, whether triggered by fill pressure or the explicit Split/Merge
	// API.
	installing atomic.Uint32

	splits atomic.Uint64 // completed splits
	merges atomic.Uint64 // completed merges
	helped atomic.Uint64 // chunks migrated by helping/relocating operations
	waits  atomic.Uint64 // operations that waited on another owner's chunk

	observing bool
	splitHist *obs.Histogram // per-chunk scatter ns; nil unless observing
	trace     *obs.TraceRing // re-sharding window spans; nil unless observing

	// obsw/opLat arm per-op-class latency timing (set by Observe when the
	// registry enabled it); one shared Worker, as in folklore.
	obsw  *obs.Worker
	opLat bool

	// noHelp disables one-chunk-per-op helping so the property tests can
	// step a window manually; relocation (correctness) is unaffected. Set
	// only before the map is shared.
	noHelp bool
}

// Option configures a Map.
type Option func(*cfg)

type cfg struct {
	shards   int
	chunk    uint64
	maxDepth uint
}

// WithShards sets the initial shard count (a power of two; default 1). The
// requested total capacity is divided evenly across them.
func WithShards(n int) Option {
	return func(c *cfg) { c.shards = n }
}

// WithChunkSlots overrides the migration chunk size (minimum 1); tests use
// chunk=1 to maximize observable interruption points.
func WithChunkSlots(n uint64) Option {
	return func(c *cfg) {
		if n < 1 {
			n = 1
		}
		c.chunk = n
	}
}

// WithMaxDepth overrides the local-depth cap.
func WithMaxDepth(d uint) Option {
	return func(c *cfg) { c.maxDepth = d }
}

// New creates a sharded map with a total initial capacity of n slots.
func New(n uint64, opts ...Option) *Map {
	c := cfg{shards: 1, chunk: DefaultChunkSlots, maxDepth: DefaultMaxDepth}
	for _, o := range opts {
		o(&c)
	}
	if c.shards < 1 {
		c.shards = 1
	}
	if c.shards&(c.shards-1) != 0 {
		panic("shardmap: shard count must be a power of two")
	}
	depth := uint(0)
	for 1<<depth < c.shards {
		depth++
	}
	if depth > c.maxDepth {
		c.maxDepth = depth
	}
	m := &Map{
		sel:      hashfn.Shard64,
		maxFill:  DefaultMaxFill,
		chunk:    c.chunk,
		maxDepth: c.maxDepth,
	}
	per := n / uint64(c.shards)
	if per < minShardSlots {
		per = minShardSlots
	}
	dir := make([]*shard, 1<<depth)
	for i := range dir {
		dir[i] = m.newShard(depth, uint64(i), per)
	}
	m.st.Store(&dirState{depth: depth, dir: dir})
	return m
}

func (m *Map) newShard(bits uint, pfx, slots uint64) *shard {
	sh := &shard{id: m.nextID.Add(1) - 1, bits: bits, pfx: pfx, tbl: folklore.New(slots)}
	if m.observing {
		sh.ops = obs.NewShardedCounter(16)
	}
	return sh
}

// opStart/opEnd time one operation into the shared Worker's per-op-class
// histogram when Observe armed latency recording (see folklore). The span
// includes any helping chunk scatter the operation performed inside a
// re-sharding window — that tail is the cost the incremental protocol
// bounds, so it belongs in the distribution.
func (m *Map) opStart() int64 {
	if m.opLat {
		return time.Now().UnixNano()
	}
	return 0
}

func (m *Map) opEnd(start int64, op table.Op, hit bool) {
	if start != 0 {
		m.obsw.Op[obs.OpClass(op, hit)].Record(uint64(time.Now().UnixNano() - start))
	}
}

// Get implements table.Map.
func (m *Map) Get(key uint64) (uint64, bool) {
	start := m.opStart()
	v, ok := m.get(key)
	m.opEnd(start, table.Get, ok)
	return v, ok
}

func (m *Map) get(key uint64) (uint64, bool) {
	h := m.sel(key)
	m.gate.RLock()
	st := m.st.Load()
	sh := st.dir[st.slot(h)]
	g := st.mig
	if g == nil || !g.covers(sh) {
		v, ok := sh.tbl.Get(key)
		sh.opsInc(h)
		m.gate.RUnlock()
		return v, ok
	}
	if !m.noHelp {
		m.helpOne(g)
	}
	// Old-then-new: a migrated entry is published in its destination before
	// the source slot is retired, so missing it in the source implies it is
	// visible in the destination. Reserved keys moved at install; the
	// destination is authoritative for them all window long.
	var v uint64
	var ok bool
	if table.IsReservedKey(key) {
		v, ok = g.dst(h).tbl.Get(key)
	} else if v, ok = sh.tbl.Get(key); !ok {
		v, ok = g.dst(h).tbl.Get(key)
	}
	sh.opsInc(h)
	m.gate.RUnlock()
	m.maybeSwap(st)
	return v, ok
}

// Put implements table.Map. It reports false only when the key's shard has
// reached the local-depth cap and cannot split further — genuine fullness.
func (m *Map) Put(key, value uint64) bool {
	start := m.opStart()
	ok := m.put(key, value)
	m.opEnd(start, table.Put, ok)
	return ok
}

func (m *Map) put(key, value uint64) bool {
	h := m.sel(key)
	for {
		m.gate.RLock()
		st := m.st.Load()
		sh := st.dir[st.slot(h)]
		if g := st.mig; g != nil && g.covers(sh) {
			if !m.noHelp {
				m.helpOne(g)
			}
			m.relocate(g, sh, key)
			d := g.dst(h)
			ok := d.tbl.Fill() < m.maxFill && d.tbl.Put(key, value)
			sh.opsInc(h)
			m.gate.RUnlock()
			m.maybeSwap(st)
			if ok {
				return true
			}
			// The destination itself crossed the threshold mid-window
			// (heavy insert pressure): retire this window, then retry — the
			// follow-up split targets the overfull destination.
			m.drain(st)
			continue
		}
		fill := sh.tbl.Fill()
		ok := fill < m.maxFill && sh.tbl.Put(key, value)
		sh.opsInc(h)
		m.gate.RUnlock()
		if ok {
			return true
		}
		if !m.relieve(st, sh) {
			return false
		}
	}
}

// Upsert implements table.Map.
func (m *Map) Upsert(key, delta uint64) (uint64, bool) {
	start := m.opStart()
	v, ok := m.upsert(key, delta)
	m.opEnd(start, table.Upsert, ok)
	return v, ok
}

func (m *Map) upsert(key, delta uint64) (uint64, bool) {
	h := m.sel(key)
	for {
		m.gate.RLock()
		st := m.st.Load()
		sh := st.dir[st.slot(h)]
		if g := st.mig; g != nil && g.covers(sh) {
			if !m.noHelp {
				m.helpOne(g)
			}
			m.relocate(g, sh, key)
			d := g.dst(h)
			var v uint64
			ok := d.tbl.Fill() < m.maxFill
			if ok {
				v, ok = d.tbl.Upsert(key, delta)
			}
			sh.opsInc(h)
			m.gate.RUnlock()
			m.maybeSwap(st)
			if ok {
				return v, true
			}
			m.drain(st)
			continue
		}
		var v uint64
		fill := sh.tbl.Fill()
		ok := fill < m.maxFill
		if ok {
			v, ok = sh.tbl.Upsert(key, delta)
		}
		sh.opsInc(h)
		m.gate.RUnlock()
		if ok {
			return v, true
		}
		if !m.relieve(st, sh) {
			return 0, false
		}
	}
}

// Delete implements table.Map.
func (m *Map) Delete(key uint64) bool {
	start := m.opStart()
	hit := m.del(key)
	m.opEnd(start, table.Delete, hit)
	return hit
}

func (m *Map) del(key uint64) bool {
	h := m.sel(key)
	m.gate.RLock()
	st := m.st.Load()
	sh := st.dir[st.slot(h)]
	g := st.mig
	if g == nil || !g.covers(sh) {
		ok := sh.tbl.Delete(key)
		sh.opsInc(h)
		m.gate.RUnlock()
		return ok
	}
	if !m.noHelp {
		m.helpOne(g)
	}
	// A delete is a write: relocate the key's source entry (if any) so the
	// tombstone lands in the destination, where it is authoritative.
	m.relocate(g, sh, key)
	ok := g.dst(h).tbl.Delete(key)
	sh.opsInc(h)
	m.gate.RUnlock()
	m.maybeSwap(st)
	return ok
}

// relieve responds to fill pressure on sh observed under generation st:
// retire any window open on another shard, or open a split window on sh.
// It reports false when sh is at the local-depth cap — the one case Put
// surfaces as table-full.
func (m *Map) relieve(st *dirState, sh *shard) bool {
	if sh.bits >= m.maxDepth {
		return false
	}
	if st.mig != nil {
		// One re-sharding at a time: an open window on some other shard must
		// retire before ours can install. Drain it — bounded by its
		// remaining chunks.
		m.drain(st)
		return true
	}
	if m.installing.CompareAndSwap(0, 1) {
		m.installSplit(st, sh)
		m.installing.Store(0)
		return true
	}
	// Another goroutine is building a window. Wait for it to land rather
	// than allocating a duplicate successor pair.
	for m.st.Load() == st && m.installing.Load() == 1 {
		runtime.Gosched()
	}
	return true
}

// Len implements table.Map. During a window the destinations ride along;
// relocation marks the source slot before an operation returns, so the sum
// is exact whenever no operation is in flight.
func (m *Map) Len() int {
	m.gate.RLock()
	st := m.st.Load()
	n := 0
	st.distinct(func(sh *shard) { n += sh.tbl.Len() })
	if st.mig != nil {
		for _, d := range st.mig.dsts {
			n += d.tbl.Len()
		}
	}
	m.gate.RUnlock()
	return n
}

// Cap implements table.Map. During a window it reports the post-swap
// capacity — those allocations are already committed.
func (m *Map) Cap() int {
	m.gate.RLock()
	st := m.st.Load()
	if st.mig != nil {
		st = st.mig.next
	}
	c := 0
	st.distinct(func(sh *shard) { c += sh.tbl.Cap() })
	m.gate.RUnlock()
	return c
}

// Fill returns the aggregate fill factor (claimed slots over capacity,
// summed across shards).
func (m *Map) Fill() float64 {
	m.gate.RLock()
	st := m.st.Load()
	if st.mig != nil {
		st = st.mig.next
	}
	var used, capn float64
	st.distinct(func(sh *shard) {
		c := float64(sh.tbl.Cap())
		used += sh.tbl.Fill() * c
		capn += c
	})
	m.gate.RUnlock()
	if capn == 0 {
		return 0
	}
	return used / capn
}

// ShardCount returns the number of distinct shards behind the directory.
func (m *Map) ShardCount() int {
	st := m.st.Load()
	n := 0
	st.distinct(func(*shard) { n++ })
	return n
}

// Resharding reports whether a split/merge window is currently open.
func (m *Map) Resharding() bool { return m.st.Load().mig != nil }

// Stats is a point-in-time snapshot of the router and its re-sharding
// machinery.
type Stats struct {
	// Shards is the distinct shard count; Depth the directory's global depth.
	Shards int
	Depth  uint
	// Splits and Merges count completed re-shardings.
	Splits uint64
	Merges uint64
	// ChunksHelped counts migration chunks scattered by helping or
	// relocating operations; ChunkWaits counts operations that waited for
	// another operation's in-flight chunk (the bounded wait of the protocol).
	ChunksHelped uint64
	ChunkWaits   uint64
	// Resharding reports an open window; MigrationDone/Total are its chunk
	// progress when it is.
	Resharding     bool
	MigrationDone  uint64
	MigrationTotal uint64
}

// Stats returns the current router statistics.
func (m *Map) Stats() Stats {
	st := m.st.Load()
	s := Stats{
		Depth:        st.depth,
		Splits:       m.splits.Load(),
		Merges:       m.merges.Load(),
		ChunksHelped: m.helped.Load(),
		ChunkWaits:   m.waits.Load(),
	}
	st.distinct(func(*shard) { s.Shards++ })
	if g := st.mig; g != nil {
		s.Resharding = true
		s.MigrationDone = g.done.Load()
		s.MigrationTotal = g.nchunks
	}
	return s
}

// ShardStat describes one shard for per-shard metrics and bench output.
type ShardStat struct {
	ID   uint64  `json:"id"`
	Bits uint    `json:"bits"`
	Pfx  uint64  `json:"prefix"`
	Live int     `json:"live"`
	Cap  int     `json:"cap"`
	Fill float64 `json:"fill"`
	Ops  uint64  `json:"ops"`
}

// ShardStats snapshots every distinct shard in prefix order.
func (m *Map) ShardStats() []ShardStat {
	st := m.st.Load()
	var out []ShardStat
	st.distinct(func(sh *shard) {
		s := ShardStat{
			ID: sh.id, Bits: sh.bits, Pfx: sh.pfx,
			Live: sh.tbl.Len(), Cap: sh.tbl.Cap(), Fill: sh.tbl.Fill(),
		}
		if sh.ops != nil {
			s.Ops = sh.ops.Total()
		}
		out = append(out, s)
	})
	return out
}

// Observe attaches the map to the observability registry: a pull source
// reports router aggregates plus per-shard (shard-id-labelled) ops/fill/live
// gauges, and chunk-scatter latencies are recorded into the
// "shard_split_chunk" worker's histogram (rendered as the
// shard_split_chunk_ns series by /metrics). Call before the map is shared;
// an unobserved map pays one nil check per operation and nothing else.
func (m *Map) Observe(reg *obs.Registry) {
	m.observing = true
	m.splitHist = &reg.Worker("shard_split_chunk").Lat
	m.trace = reg.Trace()
	if reg.OpLatencyEnabled() {
		m.obsw = reg.Worker("shardmap")
		m.opLat = true
	}
	m.st.Load().distinct(func(sh *shard) {
		sh.ops = obs.NewShardedCounter(16)
	})
	reg.AddSource("shardmap", m.metrics)
	reg.AddHeatmapSource("shardmap", m.heatmap)
}

// heatmap builds the router's "shards" heatmap: one region per distinct
// shard in prefix order (value = that shard's fill), the local-depth and
// per-shard-fill distributions, and the router gauges a scrape needs to
// tell skew from mid-reshard transients. Selector independence (pinned in
// internal/hashfn) means a flat Regions row here with a hot key in TopKeys
// is the signature of single-key skew, not routing skew.
func (m *Map) heatmap() obs.Heatmap {
	m.gate.RLock()
	st := m.st.Load()
	var regions []float64
	bits := obs.DistBuilder{}
	fills := obs.DistBuilder{}
	var live, slots uint64
	var usedf float64
	st.distinct(func(sh *shard) {
		f := sh.tbl.Fill()
		regions = append(regions, f)
		bits.Add(uint64(sh.bits))
		fills.Add(uint64(f * 100))
		live += uint64(sh.tbl.Len())
		slots += uint64(sh.tbl.Cap())
		usedf += f * float64(sh.tbl.Cap())
	})
	var done, total uint64
	if st.mig != nil {
		done, total = st.mig.done.Load(), st.mig.nchunks
	}
	m.gate.RUnlock()
	hm := obs.Heatmap{
		Kind:    "shards",
		Regions: regions,
		Dists: []obs.HeatDist{
			fills.Build("shard_fill_pct"),
			bits.Build("shard_local_depth"),
		},
		Gauges: map[string]float64{
			"shards":     float64(len(regions)),
			"depth":      float64(st.depth),
			"live":       float64(live),
			"slots":      float64(slots),
			"splits":     float64(m.splits.Load()),
			"merges":     float64(m.merges.Load()),
			"resharding": 0,
		},
	}
	if slots != 0 {
		hm.Gauges["fill"] = usedf / float64(slots)
	}
	if total != 0 {
		hm.Gauges["resharding"] = 1
		hm.Gauges["migration_progress"] = float64(done) / float64(total)
	}
	return hm
}

func (m *Map) metrics() map[string]float64 {
	s := m.Stats()
	progress := 1.0
	resharding := 0.0
	if s.Resharding {
		resharding = 1
		progress = float64(s.MigrationDone) / float64(s.MigrationTotal)
	}
	out := map[string]float64{
		"shards":             float64(s.Shards),
		"depth":              float64(s.Depth),
		"shard_splits_total": float64(s.Splits),
		"shard_merges_total": float64(s.Merges),
		"chunks_helped":      float64(s.ChunksHelped),
		"chunk_waits":        float64(s.ChunkWaits),
		"resharding":         resharding,
		"migration_progress": progress,
		"live":               float64(m.Len()),
		"slots":              float64(m.Cap()),
		"fill":               m.Fill(),
	}
	for _, sh := range m.ShardStats() {
		pfx := fmt.Sprintf("shard%d_", sh.ID)
		out[pfx+"ops"] = float64(sh.Ops)
		out[pfx+"fill"] = sh.Fill
		out[pfx+"live"] = float64(sh.Live)
	}
	return out
}

var _ table.Map = (*Map)(nil)
