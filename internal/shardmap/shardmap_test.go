package shardmap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dramhit/internal/folklore"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// checkInvariants asserts, at a quiescent point (no operation in flight,
// possibly mid-window), the properties the re-sharding protocol promises —
// the cross-shard lift of growt's migration invariants:
//
//  1. no key is live in two shards at once (copy-then-kill: a key is visible
//     on exactly one side of its MovedKey transition, and routing ownership
//     is a partition of the selector-hash space);
//  2. the multiset of live entries across all shards plus any open window's
//     destinations equals the reference map;
//  3. every reference entry is visible through the public Get, and Len
//     agrees with the reference size.
func checkInvariants(t *testing.T, m *Map, ref map[uint64]uint64) {
	t.Helper()
	st := m.st.Load()
	if got := m.Len(); got != len(ref) {
		t.Fatalf("Len = %d, reference %d", got, len(ref))
	}
	union := make(map[uint64]uint64, len(ref))
	add := func(tbl *folklore.Table) {
		tbl.Range(func(k, v uint64) bool {
			if _, dup := union[k]; dup {
				t.Fatalf("key %#x live in two shards", k)
			}
			union[k] = v
			return true
		})
	}
	st.distinct(func(sh *shard) { add(sh.tbl) })
	if st.mig != nil {
		for _, d := range st.mig.dsts {
			add(d.tbl)
		}
	}
	if len(union) != len(ref) {
		t.Fatalf("shards hold %d entries, reference %d", len(union), len(ref))
	}
	for k, want := range ref {
		if got, ok := union[k]; !ok || got != want {
			t.Fatalf("union[%#x] = (%d,%v), want (%d,true)", k, got, ok, want)
		}
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("Get(%#x) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
}

// openWindow seeds m (with tombstone churn) until fill pressure installs a
// split window, mirroring every mutation into ref. Requires m.noHelp so the
// window stays open.
func openWindow(t *testing.T, m *Map, ref map[uint64]uint64, seed int64) []uint64 {
	t.Helper()
	keys := workload.UniqueKeys(seed, 4096)
	for i := 0; ; i++ {
		if i >= len(keys) {
			t.Fatal("window never opened")
		}
		k := keys[i]
		m.Put(k, k^5)
		ref[k] = k ^ 5
		if m.st.Load().mig != nil {
			return keys
		}
		if i%7 == 3 { // churn: accumulate source-shard tombstones
			m.Delete(keys[i-1])
			delete(ref, keys[i-1])
		}
	}
}

// stepWindow migrates exactly one chunk of the open window and swaps if it
// was the last.
func stepWindow(m *Map) bool {
	st := m.st.Load()
	if st.mig == nil {
		return false
	}
	m.helpOne(st.mig)
	m.maybeSwap(st)
	return true
}

func TestRoutingBasic(t *testing.T) {
	m := New(4096, WithShards(4))
	if got := m.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d, want 4", got)
	}
	if got := m.Cap(); got != 4096 {
		t.Fatalf("Cap = %d, want 4096", got)
	}
	keys := workload.UniqueKeys(11, 2000)
	for _, k := range keys {
		if !m.Put(k, k^3) {
			t.Fatalf("Put(%#x) failed", k)
		}
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k^3 {
			t.Fatalf("Get(%#x) = (%d,%v)", k, v, ok)
		}
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(keys))
	}
	// Every shard must own a fair share: 2000 uniform keys over 4 shards.
	for _, s := range m.ShardStats() {
		if s.Live < 2000/4/2 || s.Live > 2000 {
			t.Fatalf("shard %d holds %d of 2000 keys — selector skew", s.ID, s.Live)
		}
	}
}

// TestSplitInvariantsAtEveryInterruption steps an open split window one
// chunk at a time and, between chunk claims, injects a goroutine performing
// puts, upserts and deletes that race the scatter (relocation and all);
// after each join the window invariants must hold exactly — growt's
// TestMigrationInvariantsAtEveryInterruption, lifted to cross-shard moves.
func TestSplitInvariantsAtEveryInterruption(t *testing.T) {
	m := New(128, WithChunkSlots(16))
	m.noHelp = true
	ref := make(map[uint64]uint64)
	openWindow(t, m, ref, 4242)
	checkInvariants(t, m, ref) // freshly installed, zero chunks done

	for step := 0; m.st.Load().mig != nil; step++ {
		base := uint64(1)<<40 + uint64(step)*8
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Put(base, base)
			m.Put(base+1, base+1)
			m.Upsert(base, 2)
			m.Delete(base + 1)
			m.Put(base+2, base+2)
		}()
		stepWindow(m)
		wg.Wait()
		ref[base] = base + 2
		ref[base+2] = base + 2
		checkInvariants(t, m, ref)
	}
	if m.ShardCount() != 2 {
		t.Fatalf("ShardCount after completed split = %d, want 2", m.ShardCount())
	}
	checkInvariants(t, m, ref)
}

// TestSplitNoResurrection pins the relocation linchpin across shards: with
// the victim's chunk never helped, a put-then-delete during the window must
// not be resurrected by a later chunk scatter replaying the old source value
// into a destination shard.
func TestSplitNoResurrection(t *testing.T) {
	m := New(64, WithChunkSlots(1))
	m.noHelp = true
	ref := make(map[uint64]uint64)
	keys := openWindow(t, m, ref, 31337)
	src := m.st.Load().mig.srcs[0]
	var victim uint64
	found := false
	for _, k := range keys {
		if _, ok := ref[k]; !ok {
			continue
		}
		if _, live := src.tbl.Locate(k); live {
			victim, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no live source-shard key to test against")
	}
	m.Put(victim, 999)
	m.Delete(victim)
	delete(ref, victim)
	if _, ok := m.Get(victim); ok {
		t.Fatal("deleted key still visible mid-window")
	}
	for stepWindow(m) {
		if _, ok := m.Get(victim); ok {
			t.Fatal("chunk scatter resurrected a deleted key")
		}
	}
	checkInvariants(t, m, ref)
}

// TestExplicitSplitAndMerge drives the public Split/Merge API through a full
// round trip and checks the directory, the counters, and every entry.
func TestExplicitSplitAndMerge(t *testing.T) {
	m := New(1024, WithShards(2))
	ref := make(map[uint64]uint64)
	for _, k := range workload.UniqueKeys(55, 300) {
		m.Put(k, k|1)
		ref[k] = k | 1
	}
	pivot := uint64(12345)

	if !m.Split(pivot) {
		t.Fatal("Split returned false with no window open")
	}
	if !m.Resharding() {
		t.Fatal("Split installed no window")
	}
	m.DrainResharding()
	if m.Resharding() {
		t.Fatal("window still open after DrainResharding")
	}
	if got := m.ShardCount(); got != 3 {
		t.Fatalf("ShardCount after split = %d, want 3", got)
	}
	if s := m.Stats(); s.Splits != 1 {
		t.Fatalf("Stats.Splits = %d, want 1", s.Splits)
	}
	checkInvariants(t, m, ref)

	if !m.Merge(pivot) {
		t.Fatal("Merge of freshly split buddies returned false")
	}
	m.DrainResharding()
	if got := m.ShardCount(); got != 2 {
		t.Fatalf("ShardCount after merge = %d, want 2", got)
	}
	if s := m.Stats(); s.Merges != 1 {
		t.Fatalf("Stats.Merges = %d, want 1", s.Merges)
	}
	checkInvariants(t, m, ref)

	// Merge of the root shard must refuse.
	single := New(64)
	single.Put(1, 1)
	if single.Merge(1) {
		t.Fatal("Merge split the un-split root")
	}
}

// TestAutoSplitUnderLoad checks that sustained insert pressure grows the
// shard count transparently and that completed splits leave no migration
// debris (a fresh destination carries no tombstones after pure inserts).
func TestAutoSplitUnderLoad(t *testing.T) {
	m := New(64, WithChunkSlots(8))
	keys := workload.UniqueKeys(77, 8192)
	for _, k := range keys {
		if !m.Put(k, k^9) {
			t.Fatalf("Put(%#x) failed under auto-split", k)
		}
	}
	m.DrainResharding()
	if got := m.ShardCount(); got < 8 {
		t.Fatalf("ShardCount = %d after 8192 inserts from one 64-slot shard", got)
	}
	if s := m.Stats(); s.Splits == 0 || s.ChunksHelped == 0 {
		t.Fatalf("Stats = %+v; want nonzero Splits and ChunksHelped", s)
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k^9 {
			t.Fatalf("Get(%#x) = (%d,%v) after auto-splits", k, v, ok)
		}
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(keys))
	}
	// Pure inserts: scatters skip tombstones, so no shard may carry any.
	for _, s := range m.ShardStats() {
		if s.Fill > DefaultMaxFill {
			t.Fatalf("shard %d fill %.2f above the split threshold at quiescence", s.ID, s.Fill)
		}
	}
}

// TestReservedKeysAcrossSplit splits the shards owning each reserved key —
// both drained and mid-window — and checks the side entries follow.
func TestReservedKeysAcrossSplit(t *testing.T) {
	reserved := []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey}
	m := New(256)
	for _, rk := range reserved {
		m.Put(rk, rk^77)
	}
	for _, rk := range reserved {
		if !m.Split(rk) {
			t.Fatalf("Split(%#x) refused", rk)
		}
		// Mid-window: the destination is authoritative for reserved keys.
		if v, ok := m.Get(rk); !ok || v != rk^77 {
			t.Fatalf("mid-window Get(%#x) = (%d,%v)", rk, v, ok)
		}
		m.Put(rk, rk^88)
		m.DrainResharding()
		if v, ok := m.Get(rk); !ok || v != rk^88 {
			t.Fatalf("post-split Get(%#x) = (%d,%v), want %d", rk, v, ok, rk^88)
		}
	}
	if m.Len() != len(reserved) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(reserved))
	}
	for _, rk := range reserved {
		if !m.Delete(rk) {
			t.Fatalf("Delete(%#x) reported absent after splits", rk)
		}
	}
}

// TestConcurrentMutatorsDuringResharding races worker goroutines (disjoint
// key ranges, deterministic final state) against a driver forcing split and
// merge windows, under -race. Afterwards every key must hold its final
// value, exactly once, across the whole directory.
func TestConcurrentMutatorsDuringResharding(t *testing.T) {
	const g = 4
	const perG = 400
	m := New(256, WithChunkSlots(8))
	keys := workload.UniqueKeys(909, g*perG)
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := keys[w*perG : (w+1)*perG]
			for j, k := range mine {
				m.Put(k, k^1)
				if j%5 == 0 {
					m.Delete(k)
					m.Put(k, k^1)
				}
				m.Upsert(k, 1)
				if j%3 == 0 {
					if _, ok := m.Get(mine[j/2]); !ok && j/2 < j {
						// mine[j/2] was fully written before mine[j]: it must
						// be visible.
						t.Errorf("worker %d lost key %#x mid-reshard", w, mine[j/2])
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 40; i++ {
			k := keys[rng.Intn(len(keys))]
			if i%4 == 3 {
				m.Merge(k)
			} else {
				m.Split(k)
			}
			m.DrainResharding()
		}
	}()
	wg.Wait()
	<-done
	m.DrainResharding()
	ref := make(map[uint64]uint64, len(keys))
	for _, k := range keys {
		ref[k] = (k ^ 1) + 1
	}
	checkInvariants(t, m, ref)
}

// TestStatsAndObserve pins the aggregate pull source, the per-shard labelled
// keys, and the chunk-scatter histogram through forced auto-splits.
func TestStatsAndObserve(t *testing.T) {
	m := New(64, WithChunkSlots(8))
	reg := obs.NewWith(1024, 1)
	m.Observe(reg)
	for _, k := range workload.UniqueKeys(13, 4000) {
		m.Put(k, k)
	}
	m.DrainResharding()
	s := m.Stats()
	if s.Splits == 0 || s.ChunksHelped == 0 {
		t.Fatalf("Stats = %+v; want nonzero Splits and ChunksHelped", s)
	}
	var vals map[string]float64
	for _, src := range reg.Sources() {
		if src.Name == "shardmap" {
			vals = src.Collect()
		}
	}
	if vals == nil {
		t.Fatal("Observe did not register the shardmap source")
	}
	if vals["shard_splits_total"] != float64(s.Splits) {
		t.Fatalf("obs shard_splits_total = %v, want %d", vals["shard_splits_total"], s.Splits)
	}
	if vals["shards"] != float64(m.ShardCount()) {
		t.Fatalf("obs shards = %v, want %d", vals["shards"], m.ShardCount())
	}
	if vals["migration_progress"] != 1.0 {
		t.Fatalf("obs migration_progress = %v at quiescence, want 1", vals["migration_progress"])
	}
	if got := int(vals["live"]); got != m.Len() {
		t.Fatalf("obs live = %d, Len = %d", got, m.Len())
	}
	// Per-shard labelled keys: every directory shard reports ops/fill/live,
	// and the op counters saw the inserts.
	var ops float64
	for _, sh := range m.ShardStats() {
		for _, suffix := range []string{"ops", "fill", "live"} {
			key := fmt.Sprintf("shard%d_%s", sh.ID, suffix)
			if _, present := vals[key]; !present {
				t.Fatalf("obs source missing per-shard key %q", key)
			}
		}
		ops += vals[fmt.Sprintf("shard%d_ops", sh.ID)]
	}
	if ops == 0 {
		t.Fatal("per-shard op counters all zero after 4000 inserts")
	}
	if m.splitHist.Count() == 0 {
		t.Fatal("no chunk-scatter latencies recorded")
	}
}

// TestObserveOffZeroAlloc pins the observe-off contract: an unobserved map's
// steady-state operations allocate nothing (the observability hooks are nil
// checks only).
func TestObserveOffZeroAlloc(t *testing.T) {
	m := New(1024, WithShards(4))
	for _, k := range workload.UniqueKeys(3, 64) {
		m.Put(k, k)
	}
	if avg := testing.AllocsPerRun(200, func() {
		m.Get(42)
		m.Put(42, 7)
		m.Upsert(42, 1)
	}); avg != 0 {
		t.Fatalf("observe-off steady-state ops allocate %.1f per run, want 0", avg)
	}
}
