// The cross-shard migration state machine. One re-sharding window is the
// four-phase protocol of internal/growt's incremental resize, generalized
// from "one table to its successor" to "one shard to its two split halves"
// (and "two buddy shards to their merge"):
//
//	install  — the trigger (fill pressure or the Split/Merge API) pre-builds
//	           the destination shard(s) and the post-swap directory outside
//	           the gate, then takes the exclusive gate for an O(1)
//	           publication of the window. The exclusive acquisition is the
//	           window's memory barrier: no operation started before it can
//	           still be writing the source shard(s) afterwards. Reserved-key
//	           side entries owned by a source move to their destination here.
//	help     — every subsequent operation on a covered shard claims at most
//	           one chunk of source slots (CAS unclaimed→busy, cursor-ordered)
//	           and scatters its live entries with folklore.MigrateRangeTo:
//	           publish in the per-key destination, then retire the source
//	           slot with table.MovedKey. For a split the destination is
//	           chosen by the discriminating selector-hash bit; for a merge
//	           both sources funnel into one. Operations on other shards never
//	           even take a branch into this machinery.
//	relocate — a window writer whose key still has a live source entry first
//	           ensures that entry's chunk has migrated (claiming it when
//	           unclaimed, waiting out a busy owner — a wait bounded by one
//	           chunk), and only then writes the destination. Same
//	           anti-resurrection argument as growt: for any key the source
//	           copy strictly precedes every destination write of that key,
//	           so insert-if-absent always resolves in favour of the newer
//	           value. Readers never relocate — old-then-new is already
//	           consistent.
//	swap     — when the last chunk completes, any operation CASes the state
//	           pointer to the pre-built post-swap directory. Tombstones died
//	           in the scatter, and a split shard's keys now live exactly one
//	           local-depth deeper.
//
// A split must never stop the world, and does not: the worst case any
// operation pays is one chunk scatter.
package shardmap

import (
	"runtime"
	"sync/atomic"
	"time"

	"dramhit/internal/folklore"
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

// Chunk migration states.
const (
	chunkUnclaimed uint32 = iota
	chunkBusy
	chunkDone
)

// resharding is one open split or merge window.
type resharding struct {
	merge bool
	srcs  []*shard // 1 for a split, 2 (buddy pair) for a merge
	dsts  []*shard // 2 for a split, 1 for a merge
	// splitBit is the selector-hash bit (0-based from the top) that
	// discriminates the two split destinations; unused for a merge.
	splitBit uint
	// dstTbl routes a key to its destination table — the function
	// folklore.MigrateRangeTo scatters through.
	dstTbl func(key uint64) *folklore.Table
	// next is the post-swap directory, pre-built at install.
	next *dirState

	// The chunk space concatenates the sources' slot ranges in order.
	sizes   []uint64 // per-source slot counts
	size    uint64
	chunk   uint64
	nchunks uint64
	cursor  atomic.Uint64   // next chunk offered to helpers
	state   []atomic.Uint32 // per-chunk unclaimed/busy/done
	done    atomic.Uint64   // completed chunks; == nchunks ⇒ ready to swap

	// traceID ties the window's install/chunk/swap EvReshard events into one
	// flight-recorder span (rendered as an async "reshard" span by the Chrome
	// trace export). 0 when no ring is attached.
	traceID uint64
}

// covers reports whether sh is a source of this window.
func (g *resharding) covers(sh *shard) bool {
	for _, s := range g.srcs {
		if s == sh {
			return true
		}
	}
	return false
}

// dst returns the destination shard for a selector hash.
func (g *resharding) dst(h uint64) *shard {
	if g.merge {
		return g.dsts[0]
	}
	return g.dsts[(h>>(63-g.splitBit))&1]
}

// finish wires the derived fields of a window: chunk geometry and the
// per-key destination router.
func (m *Map) finishWindow(g *resharding) {
	g.chunk = m.chunk
	for _, sz := range g.sizes {
		g.size += sz
	}
	g.nchunks = (g.size + g.chunk - 1) / g.chunk
	if g.nchunks == 0 {
		g.nchunks = 1
	}
	g.state = make([]atomic.Uint32, g.nchunks)
	g.dstTbl = func(key uint64) *folklore.Table { return g.dst(m.sel(key)).tbl }
	if m.trace != nil {
		g.traceID = m.trace.NextID()
	}
}

// traceWindow records one EvReshard lifecycle event for the window; phase is
// a Resize* code (install/chunk/swap — the same vocabulary growt's in-table
// resize uses, so one trace query covers both migration machineries).
func (m *Map) traceWindow(g *resharding, phase uint8, key uint64, arg uint32) {
	if m.trace != nil {
		m.trace.Record(g.traceID, obs.EvReshard, phase, key, arg)
	}
}

// installSplit opens a split window on src, observed under generation seen.
// The destination pair and the post-swap directory are built outside the
// gate; the critical section is O(1) bookkeeping plus the reserved-key side
// slots (the directory doubling, when needed, happened during the pre-build).
func (m *Map) installSplit(seen *dirState, src *shard) {
	if m.st.Load() != seen {
		return // stale observation: the directory already moved on
	}
	// Each half gets the source's capacity, so a completed split halves the
	// shard's fill — the growth policy of the router (capacity scales by
	// shard count, never by shard size).
	capn := uint64(src.tbl.Cap())
	g := &resharding{
		srcs: []*shard{src},
		dsts: []*shard{
			m.newShard(src.bits+1, src.pfx<<1, capn),
			m.newShard(src.bits+1, src.pfx<<1|1, capn),
		},
		splitBit: src.bits,
		sizes:    []uint64{capn},
	}
	m.finishWindow(g)

	// Post-swap directory: double it if the split shard was at global depth.
	depth := seen.depth
	if src.bits+1 > depth {
		depth = src.bits + 1
	}
	ndir := make([]*shard, 1<<depth)
	for i := range ndir {
		old := seen.dir[uint64(i)>>(depth-seen.depth)]
		if old == src {
			// The directory index's top src.bits+1 bits end in the
			// discriminating bit.
			ndir[i] = g.dsts[(uint64(i)>>(depth-(src.bits+1)))&1]
		} else {
			ndir[i] = old
		}
	}
	g.next = &dirState{depth: depth, dir: ndir}

	m.gate.Lock()
	if m.st.Load() != seen {
		m.gate.Unlock()
		return // lost the install race; drop our successors
	}
	m.moveReserved(seen, g)
	// The window directory still routes to src — covered operations switch
	// to the window protocol, everyone else is untouched.
	m.st.Store(&dirState{depth: seen.depth, dir: seen.dir, mig: g})
	m.traceWindow(g, obs.ResizeInstall, g.size, uint32(g.nchunks))
	m.gate.Unlock()
}

// installMerge opens a merge window funneling buddy shards a (even prefix)
// and b (odd prefix) into one shard of their combined capacity.
func (m *Map) installMerge(seen *dirState, a, b *shard) {
	if m.st.Load() != seen {
		return
	}
	capA, capB := uint64(a.tbl.Cap()), uint64(b.tbl.Cap())
	g := &resharding{
		merge: true,
		srcs:  []*shard{a, b},
		dsts:  []*shard{m.newShard(a.bits-1, a.pfx>>1, capA+capB)},
		sizes: []uint64{capA, capB},
	}
	m.finishWindow(g)

	ndir := make([]*shard, len(seen.dir))
	for i, sh := range seen.dir {
		if sh == a || sh == b {
			ndir[i] = g.dsts[0]
		} else {
			ndir[i] = sh
		}
	}
	g.next = &dirState{depth: seen.depth, dir: ndir}

	m.gate.Lock()
	if m.st.Load() != seen {
		m.gate.Unlock()
		return
	}
	m.moveReserved(seen, g)
	m.st.Store(&dirState{depth: seen.depth, dir: seen.dir, mig: g})
	m.traceWindow(g, obs.ResizeInstall, g.size, uint32(g.nchunks))
	m.gate.Unlock()
}

// moveReserved relocates reserved-key side entries owned by the window's
// sources to their destinations, under the exclusive gate: the destination
// is authoritative for them for the whole window.
func (m *Map) moveReserved(seen *dirState, g *resharding) {
	for _, rk := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		h := m.sel(rk)
		src := seen.dir[seen.slot(h)]
		if !g.covers(src) {
			continue
		}
		if v, ok := src.tbl.Get(rk); ok {
			g.dst(h).tbl.Put(rk, v)
			src.tbl.Delete(rk)
		}
	}
}

// Split opens a split window on the shard owning key. It reports whether a
// window was installed; false means a window is already open elsewhere or
// the shard is at the local-depth cap. The split completes cooperatively as
// operations help (or via DrainResharding).
func (m *Map) Split(key uint64) bool {
	h := m.sel(key)
	st := m.st.Load()
	if st.mig != nil {
		return false
	}
	sh := st.dir[st.slot(h)]
	if sh.bits >= m.maxDepth {
		return false
	}
	if !m.installing.CompareAndSwap(0, 1) {
		return false
	}
	m.installSplit(st, sh)
	m.installing.Store(0)
	return m.st.Load() != st
}

// Merge opens a merge window funneling the shard owning key and its buddy
// into one shard. It reports false when a window is already open, the shard
// is the root (bits 0), or the buddy is itself split deeper (local depths
// must match to merge).
func (m *Map) Merge(key uint64) bool {
	h := m.sel(key)
	st := m.st.Load()
	if st.mig != nil {
		return false
	}
	sh := st.dir[st.slot(h)]
	if sh.bits == 0 {
		return false
	}
	buddyIdx := (sh.pfx ^ 1) << (st.depth - sh.bits)
	buddy := st.dir[buddyIdx]
	if buddy.bits != sh.bits || buddy == sh {
		return false
	}
	a, b := sh, buddy
	if a.pfx&1 == 1 {
		a, b = b, a
	}
	if !m.installing.CompareAndSwap(0, 1) {
		return false
	}
	m.installMerge(st, a, b)
	m.installing.Store(0)
	return m.st.Load() != st
}

// DrainResharding force-completes any open window: claim every remaining
// chunk, wait out busy owners, swap. Loadgen's forced mid-run split and the
// drain-before-next-window path both use it.
func (m *Map) DrainResharding() {
	st := m.st.Load()
	if st.mig != nil {
		m.drain(st)
	}
}

// helpOne claims and migrates at most one chunk — the fixed helping quantum
// every covered operation contributes during a window.
func (m *Map) helpOne(g *resharding) {
	for g.done.Load() < g.nchunks {
		c := g.cursor.Add(1) - 1
		if c >= g.nchunks {
			return // every chunk claimed; stragglers are finishing
		}
		if g.state[c].CompareAndSwap(chunkUnclaimed, chunkBusy) {
			m.migrateChunk(g, c)
			return
		}
		// Claimed out of cursor order by a relocating writer; offer the next.
	}
}

// relocate guarantees key's source-shard entry, if one is live, has been
// migrated before the caller writes key in the destination.
func (m *Map) relocate(g *resharding, sh *shard, key uint64) {
	if table.IsReservedKey(key) {
		return // moved at install; destination is authoritative
	}
	slot, found := sh.tbl.Locate(key)
	if !found {
		return // absent or already migrated: nothing to order against
	}
	base := uint64(0)
	for i, s := range g.srcs {
		if s == sh {
			break
		}
		base += g.sizes[i]
	}
	m.ensureChunk(g, (base+slot)/g.chunk)
}

// ensureChunk returns once chunk c's migration is complete, claiming the
// scatter itself when unclaimed and otherwise waiting out the owner.
func (m *Map) ensureChunk(g *resharding, c uint64) {
	waited := false
	for spins := 0; ; spins++ {
		switch g.state[c].Load() {
		case chunkDone:
			return
		case chunkUnclaimed:
			if g.state[c].CompareAndSwap(chunkUnclaimed, chunkBusy) {
				m.migrateChunk(g, c)
				return
			}
		default: // busy
			if !waited {
				waited = true
				m.waits.Add(1)
			}
			if spins > 32 {
				runtime.Gosched()
			}
		}
	}
}

// migrateChunk scatters chunk c (the caller holds its busy claim) and marks
// it done. Chunk indices address the concatenation of the sources' slot
// ranges; a chunk straddling the seam of a merge simply visits both sources.
func (m *Map) migrateChunk(g *resharding, c uint64) {
	var t0 time.Time
	if m.splitHist != nil {
		t0 = time.Now()
	}
	clo := c * g.chunk
	chi := clo + g.chunk
	if chi > g.size {
		chi = g.size
	}
	base := uint64(0)
	for i, src := range g.srcs {
		sz := g.sizes[i]
		lo, hi := clo, chi
		if lo < base {
			lo = base
		}
		if hi > base+sz {
			hi = base + sz
		}
		if lo < hi {
			src.tbl.MigrateRangeTo(lo-base, hi-base, g.dstTbl)
		}
		base += sz
	}
	g.state[c].Store(chunkDone)
	done := g.done.Add(1)
	m.helped.Add(1)
	m.traceWindow(g, obs.ResizeChunk, c, uint32(done*1000/g.nchunks))
	if m.splitHist != nil {
		m.splitHist.Record(uint64(time.Since(t0).Nanoseconds()))
	}
}

// maybeSwap retires a fully-migrated window: the state-pointer CAS succeeds
// for exactly one caller, publishing the pre-built post-swap directory.
func (m *Map) maybeSwap(st *dirState) {
	g := st.mig
	if g == nil || g.done.Load() < g.nchunks {
		return
	}
	if m.st.CompareAndSwap(st, g.next) {
		if g.merge {
			m.merges.Add(1)
		} else {
			m.splits.Add(1)
		}
		m.traceWindow(g, obs.ResizeSwap, g.size, 1000)
	}
}

// drain force-completes the window open under st.
func (m *Map) drain(st *dirState) {
	g := st.mig
	for {
		c := g.cursor.Add(1) - 1
		if c >= g.nchunks {
			break
		}
		if g.state[c].CompareAndSwap(chunkUnclaimed, chunkBusy) {
			m.migrateChunk(g, c)
		}
	}
	for spins := 0; g.done.Load() < g.nchunks; spins++ {
		if spins > 32 {
			runtime.Gosched()
		}
	}
	m.maybeSwap(st)
}
