package shardmap

import (
	"testing"

	"dramhit/internal/dramhit"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// collect drains every response a Submit/Flush pair produces into got,
// failing on duplicate IDs (a completion must surface exactly once).
func collect(t *testing.T, got map[uint64]table.Response, resps []table.Response) {
	t.Helper()
	for _, r := range resps {
		if _, dup := got[r.ID]; dup {
			t.Fatalf("response ID %d surfaced twice", r.ID)
		}
		got[r.ID] = r
	}
}

// TestBatchedScatterGather pushes a mixed batch through the sharded pipeline
// and matches every Get completion back by caller ID, across shard
// boundaries and out-of-order arrival.
func TestBatchedScatterGather(t *testing.T) {
	b := NewBatched(BatchedConfig{Shards: 4, Table: dramhit.Config{Slots: 8192}})
	if got := b.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	h := b.NewHandle()
	keys := workload.UniqueKeys(21, 2000)

	var resps [256]table.Response
	puts := make([]table.Request, 0, 64)
	flushAll := func() {
		for {
			if _, done := h.Flush(resps[:]); done {
				break
			}
		}
	}
	for i, k := range keys {
		puts = append(puts, table.Request{Op: table.Put, Key: k, Value: k ^ 3, ID: uint64(i)})
		if len(puts) == 64 || i == len(keys)-1 {
			nreq, _ := h.Submit(puts, resps[:])
			if nreq != len(puts) {
				t.Fatalf("Submit consumed %d of %d puts", nreq, len(puts))
			}
			puts = puts[:0]
		}
	}
	flushAll()
	if got := b.Len(); got != len(keys) {
		t.Fatalf("Len = %d after %d puts", got, len(keys))
	}

	got := make(map[uint64]table.Response, len(keys))
	gets := make([]table.Request, 0, 64)
	for i, k := range keys {
		gets = append(gets, table.Request{Op: table.Get, Key: k, ID: uint64(i)})
		if len(gets) == 64 || i == len(keys)-1 {
			_, nresp := h.Submit(gets, resps[:])
			collect(t, got, resps[:nresp])
			gets = gets[:0]
		}
	}
	for {
		nresp, done := h.Flush(resps[:])
		collect(t, got, resps[:nresp])
		if done {
			break
		}
	}
	if h.Pending() != 0 {
		t.Fatalf("Pending = %d after done Flush", h.Pending())
	}
	if len(got) != len(keys) {
		t.Fatalf("gathered %d completions for %d gets", len(got), len(keys))
	}
	for i, k := range keys {
		r := got[uint64(i)]
		if !r.Found || r.Value != k^3 {
			t.Fatalf("get %d (key %#x) = (%d,%v), want (%d,true)", i, k, r.Value, r.Found, k^3)
		}
	}
	if s := h.Stats(); s.Gets != uint64(len(keys)) || s.Puts != uint64(len(keys)) {
		t.Fatalf("summed stats Gets=%d Puts=%d, want %d each", s.Gets, s.Puts, len(keys))
	}
}

// TestBatchedOverflow starves Submit and Flush of response space so
// completions detour through the handle's overflow queue, and checks each
// surfaces exactly once.
func TestBatchedOverflow(t *testing.T) {
	b := NewBatched(BatchedConfig{Shards: 4, Table: dramhit.Config{Slots: 4096}})
	h := b.NewHandle()
	keys := workload.UniqueKeys(22, 500)
	reqs := make([]table.Request, 0, len(keys))
	for i, k := range keys {
		reqs = append(reqs, table.Request{Op: table.Put, Key: k, Value: k + 1, ID: uint64(i)})
	}
	var big [1024]table.Response
	h.Submit(reqs, big[:])
	for n, done := h.Flush(big[:]); !done; n, done = h.Flush(big[:]) {
		_ = n
	}

	reqs = reqs[:0]
	for i, k := range keys {
		reqs = append(reqs, table.Request{Op: table.Get, Key: k, ID: uint64(i)})
	}
	got := make(map[uint64]table.Response, len(keys))
	var tiny [7]table.Response // far smaller than the completion volume
	_, nresp := h.Submit(reqs, tiny[:])
	collect(t, got, tiny[:nresp])
	rounds := 0
	for {
		nresp, done := h.Flush(tiny[:])
		collect(t, got, tiny[:nresp])
		if done {
			break
		}
		if rounds++; rounds > 10*len(keys) {
			t.Fatal("Flush never drained the overflow queue")
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("gathered %d completions for %d gets", len(got), len(keys))
	}
	for i, k := range keys {
		if r := got[uint64(i)]; !r.Found || r.Value != k+1 {
			t.Fatalf("get %d = (%d,%v), want (%d,true)", i, r.Value, r.Found, k+1)
		}
	}
}

// TestBatchedObserveSource checks the single aggregated source (per-shard
// labelled) replaces the per-table registrations that would collide.
func TestBatchedObserveSource(t *testing.T) {
	reg := obs.NewWith(0, 1)
	b := NewBatched(BatchedConfig{
		Shards: 2,
		Table:  dramhit.Config{Slots: 1024, Observe: reg},
	})
	s := b.NewSync()
	for _, k := range workload.UniqueKeys(31, 100) {
		s.Put(k, k)
	}
	var batched map[string]float64
	for _, src := range reg.Sources() {
		switch src.Name {
		case "shardmap_batched":
			batched = src.Collect()
		case "dramhit", "governor":
			t.Fatalf("per-shard table leaked its %q source onto the shared registry", src.Name)
		}
	}
	if batched == nil {
		t.Fatal("shardmap_batched source not registered")
	}
	if int(batched["live"]) != 100 {
		t.Fatalf("live = %v, want 100", batched["live"])
	}
	for i := 0; i < 2; i++ {
		if _, ok := batched["shard"+itoa(i)+"_live"]; !ok {
			t.Fatalf("missing per-shard key shard%d_live", i)
		}
	}
}

// TestBatchedShardsDisjoint checks the two faces agree on ownership: the
// batched router and the synchronous Map route every key to the same shard
// index, and the per-shard tables partition the key set.
func TestBatchedShardsDisjoint(t *testing.T) {
	b := NewBatched(BatchedConfig{Shards: 8, Table: dramhit.Config{Slots: 8192}})
	s := b.NewSync()
	keys := workload.UniqueKeys(41, 1000)
	for _, k := range keys {
		s.Put(k, k)
	}
	total := 0
	for i := 0; i < b.Shards(); i++ {
		total += b.Shard(i).Len()
	}
	if total != len(keys) {
		t.Fatalf("per-shard Lens sum to %d, want %d (a key landed in two shards)", total, len(keys))
	}
	for _, k := range keys {
		own := b.shardOf(k)
		for i := 0; i < b.Shards(); i++ {
			if i == own {
				continue
			}
			if _, ok := b.Shard(i).NewSync().Get(k); ok {
				t.Fatalf("key %#x visible in shard %d, owned by %d", k, i, own)
			}
		}
	}
}
