// The batched face of the router: Batched shards the asynchronous Submit
// pipeline over N dramhit instances. Each shard is a complete dramhit.Table
// — its own slot array, prefetch windows, combining mirror and governor —
// and a BatchedHandle holds one dramhit.Handle per shard, so every
// per-handle optimization the pipeline has accumulated operates on
// shard-local state. A caller's batch is scattered across the shard-local
// rings by the selector hash and completions are gathered back without any
// global lock: the handle owns all cross-shard buffers.
//
// The batched face is statically sharded (no online re-sharding): the
// MovedKey migration protocol lives in folklore's slot layout, which the
// synchronous Map face routes over. The two faces share the selector hash,
// so a key's shard is the same under either.
package shardmap

import (
	"time"

	"dramhit/internal/dramhit"
	"dramhit/internal/hashfn"
	"dramhit/internal/table"
)

// BatchedConfig configures a sharded batched table.
type BatchedConfig struct {
	// Shards is the shard count (a power of two; 0 and 1 both mean one
	// shard).
	Shards int
	// Table is the per-shard template. Slots is the TOTAL capacity, divided
	// evenly across shards (floored at 16 per shard), so configurations with
	// different shard counts compare at equal memory. Observe is handled by
	// Batched itself: per-shard tables must not each register the fixed
	// "dramhit"/"governor" source names on one registry (last registration
	// would win), so the template's registry is stripped from the shard
	// tables and Batched registers a single aggregated source with
	// shard-id-labelled keys instead.
	Table dramhit.Config
}

// Batched is a shard router over N dramhit tables. Create per-goroutine
// BatchedHandles with NewHandle.
type Batched struct {
	shards []*dramhit.Table
	depth  uint
	sel    func(uint64) uint64
}

// NewBatched creates the sharded batched table.
func NewBatched(cfg BatchedConfig) *Batched {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if n&(n-1) != 0 {
		panic("shardmap: shard count must be a power of two")
	}
	depth := uint(0)
	for 1<<depth < n {
		depth++
	}
	reg := cfg.Table.Observe
	tcfg := cfg.Table
	tcfg.Observe = nil
	tcfg.Slots = cfg.Table.Slots / uint64(n)
	if tcfg.Slots < minShardSlots {
		tcfg.Slots = minShardSlots
	}
	b := &Batched{
		shards: make([]*dramhit.Table, n),
		depth:  depth,
		sel:    hashfn.Shard64,
	}
	for i := range b.shards {
		b.shards[i] = dramhit.New(tcfg)
	}
	if reg != nil {
		reg.AddSource("shardmap_batched", b.metrics)
	}
	return b
}

// shardOf returns the shard index owning key.
func (b *Batched) shardOf(key uint64) int {
	return int(b.sel(key) >> (64 - b.depth)) // depth 0 ⇒ shift 64 ⇒ 0
}

// Shards returns the shard count.
func (b *Batched) Shards() int { return len(b.shards) }

// Shard returns shard i's table (bench sweeps read per-shard fill and
// governor state through it).
func (b *Batched) Shard(i int) *dramhit.Table { return b.shards[i] }

// Len sums live entries across shards.
func (b *Batched) Len() int {
	n := 0
	for _, t := range b.shards {
		n += t.Len()
	}
	return n
}

// Cap sums slot capacity across shards.
func (b *Batched) Cap() int {
	c := 0
	for _, t := range b.shards {
		c += t.Cap()
	}
	return c
}

// Fill returns the aggregate fill factor.
func (b *Batched) Fill() float64 {
	var used float64
	capn := 0
	for _, t := range b.shards {
		used += t.Fill() * float64(t.Cap())
		capn += t.Cap()
	}
	if capn == 0 {
		return 0
	}
	return used / float64(capn)
}

func (b *Batched) metrics() map[string]float64 {
	out := map[string]float64{
		"shards": float64(len(b.shards)),
		"live":   float64(b.Len()),
		"slots":  float64(b.Cap()),
		"fill":   b.Fill(),
	}
	for i, t := range b.shards {
		pfx := "shard" + itoa(i) + "_"
		out[pfx+"fill"] = t.Fill()
		out[pfx+"live"] = float64(t.Len())
	}
	return out
}

// itoa avoids strconv for the tiny shard-index label (metrics path only).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// gatherBuf is the per-Submit-call response staging size; completions beyond
// the caller's resps slice overflow into a handle-local queue drained by the
// next Submit or Flush.
const gatherBuf = 64

// BatchedHandle is a per-goroutine handle over the sharded pipeline. It is
// not safe for concurrent use (like dramhit.Handle); create one per worker.
type BatchedHandle struct {
	b       *Batched
	hs      []*dramhit.Handle
	scratch [][]table.Request // per-shard scatter buffers, reused across calls
	gather  [gatherBuf]table.Response
	// overflow holds completions produced while the caller's resps slice was
	// full. They are delivered first on the next Submit or Flush, preserving
	// the "completions eventually surface" contract.
	overflow []table.Response
}

// NewHandle creates a handle with one shard-local dramhit.Handle per shard.
func (b *Batched) NewHandle() *BatchedHandle {
	h := &BatchedHandle{
		b:       b,
		hs:      make([]*dramhit.Handle, len(b.shards)),
		scratch: make([][]table.Request, len(b.shards)),
	}
	for i, t := range b.shards {
		h.hs[i] = t.NewHandle()
	}
	return h
}

// SetLatencyHook installs a completion callback on every shard handle; pass
// nil to disable.
func (h *BatchedHandle) SetLatencyHook(fn func(req table.Request, lat time.Duration)) {
	for _, sh := range h.hs {
		sh.SetLatencyHook(fn)
	}
}

// Pending returns the number of requests in flight across all shard
// pipelines, plus buffered completions not yet surfaced.
func (h *BatchedHandle) Pending() int {
	n := len(h.overflow)
	for _, sh := range h.hs {
		n += sh.Pending()
	}
	return n
}

// drainOverflow moves buffered completions into resps; returns the new nresp.
func (h *BatchedHandle) drainOverflow(resps []table.Response, nresp int) int {
	n := copy(resps[nresp:], h.overflow)
	if n > 0 {
		h.overflow = h.overflow[:copy(h.overflow, h.overflow[n:])]
	}
	return nresp + n
}

// sink delivers freshly gathered completions: into resps while it has room,
// into the overflow queue after.
func (h *BatchedHandle) sink(got []table.Response, resps []table.Response, nresp int) int {
	n := copy(resps[nresp:], got)
	if n < len(got) {
		h.overflow = append(h.overflow, got[n:]...)
	}
	return nresp + n
}

// Submit scatters reqs across the shard-local pipelines and gathers whatever
// completions they produce. It always consumes all of reqs — completions the
// caller's resps cannot hold are buffered and surface on the next Submit or
// Flush — so nreq == len(reqs) and nresp ≤ len(resps). Completions arrive
// out of order across shards as well as within one; match them to requests
// by the caller-assigned ID, exactly as with a single-table handle.
func (h *BatchedHandle) Submit(reqs []table.Request, resps []table.Response) (nreq, nresp int) {
	nresp = h.drainOverflow(resps, 0)
	for i := range h.scratch {
		h.scratch[i] = h.scratch[i][:0]
	}
	for _, r := range reqs {
		s := h.b.shardOf(r.Key)
		h.scratch[s] = append(h.scratch[s], r)
	}
	for s, batch := range h.scratch {
		sh := h.hs[s]
		for len(batch) > 0 {
			// The shard handle consumes fewer than len(batch) requests only
			// when the gather buffer fills; loop with a drained buffer until
			// the shard accepts everything.
			n, got := sh.Submit(batch, h.gather[:])
			nresp = h.sink(h.gather[:got], resps, nresp)
			batch = batch[n:]
		}
	}
	return len(reqs), nresp
}

// Flush drains every shard pipeline. done reports whether all pipelines are
// empty and every buffered completion has been delivered; like the
// single-table Flush, call it in a loop with fresh resps space until done.
func (h *BatchedHandle) Flush(resps []table.Response) (nresp int, done bool) {
	nresp = h.drainOverflow(resps, 0)
	done = len(h.overflow) == 0
	for _, sh := range h.hs {
		for sh.Pending() > 0 {
			got, d := sh.Flush(h.gather[:])
			nresp = h.sink(h.gather[:got], resps, nresp)
			if d {
				break
			}
		}
	}
	if len(h.overflow) > 0 {
		done = false
	}
	return nresp, done
}

// Stats sums the per-shard handle counters.
func (h *BatchedHandle) Stats() dramhit.Stats {
	var s dramhit.Stats
	for _, sh := range h.hs {
		t := sh.Stats()
		s.Gets += t.Gets
		s.Puts += t.Puts
		s.Upserts += t.Upserts
		s.Deletes += t.Deletes
		s.Hits += t.Hits
		s.Failed += t.Failed
		s.Reprobes += t.Reprobes
		s.Lines += t.Lines
		s.KeyLines += t.KeyLines
		s.TagSkips += t.TagSkips
		s.TagHits += t.TagHits
		s.TagFalse += t.TagFalse
		s.CombinedUpserts += t.CombinedUpserts
		s.PiggybackedGets += t.PiggybackedGets
		s.ForwardedGets += t.ForwardedGets
		s.CASAttempts += t.CASAttempts
	}
	return s
}

// NewSync returns a synchronous table.Map adapter routing over per-shard
// dramhit.Sync instances — the conformance-suite face of Batched.
func (b *Batched) NewSync() *BatchedSync {
	s := &BatchedSync{b: b, syncs: make([]*dramhit.Sync, len(b.shards))}
	for i, t := range b.shards {
		s.syncs[i] = t.NewSync()
	}
	return s
}

// BatchedSync adapts Batched to table.Map by routing each synchronous call
// to the owning shard's dramhit.Sync.
type BatchedSync struct {
	b     *Batched
	syncs []*dramhit.Sync
}

func (s *BatchedSync) Get(key uint64) (uint64, bool) { return s.syncs[s.b.shardOf(key)].Get(key) }
func (s *BatchedSync) Put(key, value uint64) bool    { return s.syncs[s.b.shardOf(key)].Put(key, value) }
func (s *BatchedSync) Upsert(key, d uint64) (uint64, bool) {
	return s.syncs[s.b.shardOf(key)].Upsert(key, d)
}
func (s *BatchedSync) Delete(key uint64) bool { return s.syncs[s.b.shardOf(key)].Delete(key) }
func (s *BatchedSync) Len() int               { return s.b.Len() }
func (s *BatchedSync) Cap() int               { return s.b.Cap() }

// Clone returns a fresh adapter over the same shards (each with its own
// shard handles), for the concurrent conformance tests.
func (s *BatchedSync) Clone() table.Map { return s.b.NewSync() }

var _ table.Map = (*BatchedSync)(nil)
