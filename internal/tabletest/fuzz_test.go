package tabletest_test

import (
	"testing"

	"dramhit/internal/dramhit"
	"dramhit/internal/folklore"
	"dramhit/internal/growt"
	"dramhit/internal/locked"
	"dramhit/internal/shardmap"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
)

// FuzzTableOps decodes an arbitrary byte string into a Put/Get/Upsert/Delete
// sequence and replays it against every synchronous table implementation and
// a reference map, requiring identical responses (values, presence, and Len)
// at every step. The resizing table joins with a tiny initial capacity so
// long inputs drive it through several incremental migrations mid-stream —
// the fuzzer is free to interleave deletes, reserved keys, and overwrites
// with the doublings, which is exactly the state space the migration
// protocol must survive.
//
// Encoding: each operation consumes 3 bytes — opcode, key, value. Keys map
// byte-for-byte onto uint64 except the top two encodings, which select the
// non-zero reserved keys (key byte 0 is table.EmptyKey already); values are
// the raw byte, so the reserved in-flight value can never be stored. The
// ≤255-key space forces collisions, overwrites, and tombstone churn.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{})
	// A little of everything, including every reserved key.
	f.Add(fuzzSeq(
		0, 1, 10, // put k1=10
		3, 1, 5, // upsert k1 += 5
		2, 1, 0, // get k1
		0, 0x00, 7, // put EmptyKey
		0, 0xff, 8, // put TombstoneKey
		0, 0xfe, 9, // put MovedKey
		4, 1, 0, // delete k1
		2, 1, 0, // get k1 (absent)
		0, 1, 3, // reinsert k1
		4, 0xfe, 0, // delete MovedKey
	))
	// Force ≥2 doublings mid-stream: 200 distinct-key puts from a 64-slot
	// start (threshold 48 → 128, then 96 → 256), with deletes and upserts
	// interleaved so migrations run over tombstones and live updates.
	dbl := []byte(nil)
	for i := 1; i <= 200; i++ {
		dbl = append(dbl, 0, byte(i), byte(i))
		if i%5 == 0 {
			dbl = append(dbl, 4, byte(i-2), 0) // delete behind the front
		}
		if i%7 == 0 {
			dbl = append(dbl, 3, byte(i-1), 2) // upsert behind the front
		}
	}
	f.Add(dbl)
	// Tombstone-churn compaction: hammer a handful of keys with
	// insert/delete cycles so same-capacity rebuilds trigger.
	churn := []byte(nil)
	for i := 0; i < 120; i++ {
		k := byte(i%8 + 1)
		churn = append(churn, 0, k, byte(i), 4, k, 0)
	}
	f.Add(churn)
	// Stash-chain overflow: forty live keys bury the one-bucket variant's
	// seven lanes under a deep stash chain, then deletes, upserts and
	// reinserts churn the chain's middle while lookups keep walking it.
	stash := []byte(nil)
	for i := 1; i <= 40; i++ {
		stash = append(stash, 0, byte(i), byte(i))
	}
	for i := 1; i+1 <= 40; i += 3 {
		stash = append(stash,
			4, byte(i), 0, // delete a chained key
			3, byte(i+1), 5, // upsert its neighbour in place
			0, byte(i), 1, // reinsert the deleted key
			2, byte(i), 0) // read it back through the chain
	}
	f.Add(stash)
	// Force shard splits mid-sequence: drive the 64-slot sharded router past
	// its 0.75 fill threshold (48 keys) with reserved keys and churn in the
	// mix, then keep mutating through the windows the splits open.
	split := fuzzSeq(
		0, 0x00, 7, // reserved keys seeded before any window
		0, 0xff, 8,
		0, 0xfe, 9,
	)
	for i := 1; i <= 160; i++ {
		split = append(split, 0, byte(i), byte(i))
		switch i % 9 {
		case 2:
			split = append(split, 4, byte(i-1), 0) // delete behind the front
		case 5:
			split = append(split, 3, byte(i), 1) // upsert the newest key
		case 7:
			split = append(split, 2, 0xfe, 0) // read a reserved key mid-window
		}
	}
	f.Add(split)

	f.Fuzz(func(t *testing.T, data []byte) {
		replayTableOps(t, data)
	})
}

// fuzzSeq builds an encoded op stream from (op, key, value) byte triples.
func fuzzSeq(b ...byte) []byte { return b }

// fuzzKey maps a key byte onto the fuzzed key space: 0 is table.EmptyKey by
// value, and the top two encodings select the other reserved keys.
func fuzzKey(b byte) uint64 {
	switch b {
	case 0xff:
		return table.TombstoneKey
	case 0xfe:
		return table.MovedKey
	}
	return uint64(b)
}

// maxFuzzOps bounds one input's replay so the fixed-capacity baselines can
// never legitimately report full (tombstoned slots are not reused, so every
// insert after a delete claims a fresh slot; 4096 slots ≫ maxFuzzOps
// claims) — any divergence between implementations is therefore a real bug.
const maxFuzzOps = 1024

func replayTableOps(t *testing.T, data []byte) {
	const slots = 1 << 12
	impls := []struct {
		name string
		m    table.Map
	}{
		// dramhit-p is exercised by the conformance suite and crosscheck; it
		// is omitted here because each fuzz execution would pay its
		// delegation goroutines' startup.
		{"folklore", folklore.New(slots)},
		{"locked", locked.New(slots)},
		{"dramhit", dramhit.New(dramhit.Config{Slots: slots}).NewSync()},
		{"growt", growt.New(64)},
		{"growt-gate", growt.New(64, growt.WithResizeMode(table.ResizeGate))},
		// The sharded router joins tiny for the same reason growt does: long
		// inputs push a 64-slot single shard through several splits (and the
		// 16-slot-chunk variant holds each window open across many ops), so
		// the fuzzer interleaves deletes, reserved keys and overwrites with
		// live cross-shard migration.
		{"shardmap", shardmap.New(64)},
		{"shardmap-chunk16", shardmap.New(64, shardmap.WithChunkSlots(16))},
		{"sharded-batched", shardmap.NewBatched(shardmap.BatchedConfig{
			Shards: 4, Table: dramhit.Config{Slots: slots},
		}).NewSync()},
		// Bucket layout, three postures: the raw engine starting at 64 slots
		// (the dbl seed drives it through at least two index rebuilds), the
		// dramhit pipeline over the same engine, and a one-bucket growth-
		// disabled engine where all but seven live keys ride stash chains —
		// the overflow path replayed against every other implementation.
		{"bucket", slotarr.NewBucketMap(64)},
		{"dramhit-bucket", dramhit.New(dramhit.Config{
			Slots: 64, Layout: table.LayoutBucket,
		}).NewSync()},
		{"bucket-stash", slotarr.NewBucketMapOf(slotarr.NewBucketTable(
			slotarr.BucketConfig{Buckets: 1, MaxLoad: 1 << 30}))},
	}
	ref := make(map[uint64]uint64)
	for op := 0; op+3 <= len(data) && op/3 < maxFuzzOps; op += 3 {
		k := fuzzKey(data[op+1])
		v := uint64(data[op+2])
		switch data[op] % 5 {
		case 0, 1: // put (double weight: insert pressure drives doublings)
			ref[k] = v
			for _, im := range impls {
				if !im.m.Put(k, v) {
					t.Fatalf("op %d: %s rejected Put(%#x)", op/3, im.name, k)
				}
			}
		case 2: // get
			want, wok := ref[k]
			for _, im := range impls {
				if got, ok := im.m.Get(k); ok != wok || (ok && got != want) {
					t.Fatalf("op %d: %s Get(%#x) = (%d,%v), want (%d,%v)",
						op/3, im.name, k, got, ok, want, wok)
				}
			}
		case 3: // upsert
			ref[k] += v
			for _, im := range impls {
				if got, ok := im.m.Upsert(k, v); !ok || got != ref[k] {
					t.Fatalf("op %d: %s Upsert(%#x) = (%d,%v), want %d",
						op/3, im.name, k, got, ok, ref[k])
				}
			}
		case 4: // delete
			_, want := ref[k]
			delete(ref, k)
			for _, im := range impls {
				if got := im.m.Delete(k); got != want {
					t.Fatalf("op %d: %s Delete(%#x) = %v, want %v",
						op/3, im.name, k, got, want)
				}
			}
		}
		for _, im := range impls {
			if im.m.Len() != len(ref) {
				t.Fatalf("op %d: %s Len = %d, reference %d",
					op/3, im.name, im.m.Len(), len(ref))
			}
		}
	}
	// Final sweep: every reference entry is readable everywhere.
	for k, want := range ref {
		for _, im := range impls {
			if got, ok := im.m.Get(k); !ok || got != want {
				t.Fatalf("final: %s Get(%#x) = (%d,%v), want (%d,true)",
					im.name, k, got, ok, want)
			}
		}
	}
}
