package tabletest_test

import (
	"testing"

	"dramhit/internal/dramhit"
	"dramhit/internal/shardmap"
	"dramhit/internal/table"
	"dramhit/internal/tabletest"
)

// TestShardmapConformance runs the shared conformance suite against the
// sharded facades: the synchronous router at one shard (pure routing
// overhead), at four shards (cross-shard routing), and with one-slot
// migration chunks (the finest helping schedule, so any auto-split the
// suite provokes opens the longest possible window for the concurrent
// subtests to race), plus the batched router's Sync adapter. LooseCapacity
// applies throughout: the synchronous map grows by splitting and never
// reports full, and the batched shards partition capacity so tight packing
// across the whole table is not promised.
func TestShardmapConformance(t *testing.T) {
	tabletest.Run(t, "Shardmap1",
		func(n uint64) table.Map { return shardmap.New(n) },
		tabletest.LooseCapacity())
	tabletest.Run(t, "Shardmap4",
		func(n uint64) table.Map { return shardmap.New(n, shardmap.WithShards(4)) },
		tabletest.LooseCapacity())
	tabletest.Run(t, "ShardmapChunk1",
		func(n uint64) table.Map {
			return shardmap.New(n, shardmap.WithChunkSlots(1))
		},
		tabletest.LooseCapacity())
	tabletest.Run(t, "ShardedBatched",
		func(n uint64) table.Map {
			return shardmap.NewBatched(shardmap.BatchedConfig{
				Shards: 4,
				Table:  dramhit.Config{Slots: n},
			}).NewSync()
		},
		tabletest.LooseCapacity())
}
