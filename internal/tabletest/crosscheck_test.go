package tabletest_test

import (
	"math/rand"
	"testing"

	"dramhit/internal/dramhit"
	"dramhit/internal/dramhitp"
	"dramhit/internal/folklore"
	"dramhit/internal/growt"
	"dramhit/internal/locked"
	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// TestCrossImplementationEquivalence drives every table implementation with
// the same randomized operation stream and requires identical observable
// behaviour (values and presence) at every read, against a reference map.
// This is the strongest single correctness statement in the repository: all
// the designs implement the same abstract map. The resizing table joins with
// a deliberately tiny initial capacity so the stream drives it through
// several incremental migrations mid-comparison (and its gate-mode twin
// through the same doublings stop-the-world).
func TestCrossImplementationEquivalence(t *testing.T) {
	const slots = 1 << 13
	dh := dramhit.New(dramhit.Config{Slots: slots}).NewSync()
	dp := dramhitp.New(dramhitp.Config{Slots: slots, Producers: 1, Consumers: 2})
	dp.Start()
	defer dp.Close()
	impls := map[string]table.Map{
		"folklore":   folklore.New(slots),
		"dramhit":    dh,
		"dramhit-p":  dp.NewSync(),
		"locked":     locked.New(slots),
		"growt":      growt.New(64),
		"growt-gate": growt.New(64, growt.WithResizeMode(table.ResizeGate)),
	}
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(99))
	keys := workload.UniqueKeys(99, 400)
	keys = append(keys, table.EmptyKey, table.TombstoneKey, table.MovedKey)

	for i := 0; i < 12000; i++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(8) {
		case 0, 1, 2:
			v := rng.Uint64() >> 16
			ref[k] = v
			for name, m := range impls {
				if !m.Put(k, v) {
					t.Fatalf("op %d: %s rejected Put", i, name)
				}
			}
		case 3:
			ref[k] += 9
			want := ref[k]
			for name, m := range impls {
				if got, ok := m.Upsert(k, 9); !ok || got != want {
					t.Fatalf("op %d: %s Upsert = (%d,%v), want %d", i, name, got, ok, want)
				}
			}
		case 4:
			_, want := ref[k]
			delete(ref, k)
			for name, m := range impls {
				if got := m.Delete(k); got != want {
					t.Fatalf("op %d: %s Delete = %v, want %v", i, name, got, want)
				}
			}
		default:
			want, wok := ref[k]
			for name, m := range impls {
				got, ok := m.Get(k)
				if ok != wok || (ok && got != want) {
					t.Fatalf("op %d: %s Get(%d) = (%d,%v), want (%d,%v)",
						i, name, k, got, ok, want, wok)
				}
			}
		}
	}
	for name, m := range impls {
		if m.Len() != len(ref) {
			t.Errorf("%s: final Len %d, reference %d", name, m.Len(), len(ref))
		}
	}
}
