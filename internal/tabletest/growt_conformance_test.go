package tabletest_test

import (
	"testing"

	"dramhit/internal/growt"
	"dramhit/internal/table"
	"dramhit/internal/tabletest"
)

// TestGrowtConformance runs the shared conformance suite against the
// resizing table: the default incremental migration, the gate-mode A/B
// baseline, and an incremental variant with one-slot chunks — the
// finest-grained helping schedule, so any resize the suite provokes opens
// the longest possible window for the concurrent subtests to race against.
// LooseCapacity applies because a resizing table never reports full.
// (Growth under sustained concurrent load is exercised separately by the
// growt package's own tests, the cross-implementation check, and
// FuzzTableOps, all of which start the table far below their key counts.)
func TestGrowtConformance(t *testing.T) {
	tabletest.Run(t, "GrowtIncremental",
		func(n uint64) table.Map { return growt.New(n) },
		tabletest.LooseCapacity())
	tabletest.Run(t, "GrowtGate",
		func(n uint64) table.Map {
			return growt.New(n, growt.WithResizeMode(table.ResizeGate))
		},
		tabletest.LooseCapacity())
	tabletest.Run(t, "GrowtChunk1",
		func(n uint64) table.Map {
			return growt.New(n, growt.WithChunkSlots(1))
		},
		tabletest.LooseCapacity())
}
