package tabletest_test

import (
	"sync"
	"testing"

	"dramhit/internal/dramhit"
	"dramhit/internal/dramhitp"
	"dramhit/internal/slotarr"
	"dramhit/internal/table"
	"dramhit/internal/tabletest"
)

// TestBucketConformance runs the shared suite against the bucket layout at
// every level of the stack: the raw slotarr engine through its uint64 view,
// the core dramhit pipeline in bucket mode, and the partitioned table with
// bucket partitions. All three grow on demand (LooseCapacity), and the
// concurrent subtests race handle clones against the engine's resizes.
func TestBucketConformance(t *testing.T) {
	tabletest.Run(t, "Bucket",
		func(n uint64) table.Map { return slotarr.NewBucketMap(n) },
		tabletest.LooseCapacity())
	tabletest.Run(t, "DramhitBucket",
		func(n uint64) table.Map {
			return dramhit.New(dramhit.Config{Slots: n, Layout: table.LayoutBucket}).NewSync()
		},
		tabletest.LooseCapacity())
	tabletest.Run(t, "DramhitPBucket",
		func(n uint64) table.Map {
			tb := dramhitp.New(dramhitp.Config{
				// Producers sized for the suite's widest concurrent subtest:
				// every goroutine's Clone claims a write endpoint.
				Slots: n, Producers: 16, Consumers: 2, Layout: table.LayoutBucket,
			})
			tb.Start()
			return tb.NewSync()
		},
		tabletest.LooseCapacity())
}

// TestBucketStashChains pins the overflow path: one bucket with growth
// disabled has seven lanes, so all but seven of the inserts must land on the
// stash chain — and every operation must keep working there, sequentially
// and under concurrent same-chain hammering.
func TestBucketStashChains(t *testing.T) {
	bt := slotarr.NewBucketTable(slotarr.BucketConfig{Buckets: 1, MaxLoad: 1 << 30})
	m := slotarr.NewBucketMapOf(bt)
	const n = 200
	for k := uint64(0); k < n; k++ {
		m.Put(k, k*7)
	}
	if g := bt.Grows(); g != 0 {
		t.Fatalf("growth-disabled table grew %d times", g)
	}
	if s := bt.Stashed(); s < n-slotarr.BucketLanes {
		t.Fatalf("Stashed = %d, want >= %d", s, n-slotarr.BucketLanes)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := m.Get(k); !ok || v != k*7 {
			t.Fatalf("Get(%d) = (%d, %v) on the stash chain", k, v, ok)
		}
	}
	// Deletes, upserts and re-inserts all down the chain.
	for k := uint64(0); k < n; k += 2 {
		if !m.Delete(k) {
			t.Fatalf("Delete(%d) missed on the stash chain", k)
		}
	}
	for k := uint64(1); k < n; k += 2 {
		if v, _ := m.Upsert(k, 1); v != k*7+1 {
			t.Fatalf("Upsert(%d) = %d, want %d", k, v, k*7+1)
		}
	}
	for k := uint64(0); k < n; k += 2 {
		m.Put(k, k)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	// Concurrent clones fight over one chain: the per-key upsert counts must
	// still be exact (the engine's CAS republish serializes them).
	const g, per = 6, 450 // per divisible by 9: every key gets exactly per/9
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mm := m.Clone()
			for j := 0; j < per; j++ {
				mm.Upsert(uint64(j%9), 1)
			}
		}()
	}
	wg.Wait()
	for k := uint64(0); k < 9; k++ {
		want := k + g*per/9
		if k%2 == 1 {
			want = k*7 + 1 + g*per/9
		}
		if v, ok := m.Get(k); !ok || v != want {
			t.Fatalf("after concurrent upserts, Get(%d) = (%d, %v), want %d", k, v, ok, want)
		}
	}
}

// TestBucketFlatBitIdentical drives the dramhit Sync adapter in both layouts
// through one deterministic mixed stream and requires the same response to
// every single operation — the layouts are two physical encodings of one
// abstract map.
func TestBucketFlatBitIdentical(t *testing.T) {
	flat := dramhit.New(dramhit.Config{Slots: 1 << 12}).NewSync()
	bkt := dramhit.New(dramhit.Config{Slots: 64, Layout: table.LayoutBucket}).NewSync()
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := 0; i < 20000; i++ {
		k := next() % 600
		switch next() % 5 {
		case 0:
			v := next()
			if pf, pb := flat.Put(k, v), bkt.Put(k, v); pf != pb {
				t.Fatalf("op %d: Put(%d) diverged: flat %v, bucket %v", i, k, pf, pb)
			}
		case 1:
			vf, of := flat.Upsert(k, 3)
			vb, ob := bkt.Upsert(k, 3)
			if vf != vb || of != ob {
				t.Fatalf("op %d: Upsert(%d) diverged: flat (%d,%v), bucket (%d,%v)", i, k, vf, of, vb, ob)
			}
		case 2:
			if df, db := flat.Delete(k), bkt.Delete(k); df != db {
				t.Fatalf("op %d: Delete(%d) diverged: flat %v, bucket %v", i, k, df, db)
			}
		default:
			vf, of := flat.Get(k)
			vb, ob := bkt.Get(k)
			if vf != vb || of != ob {
				t.Fatalf("op %d: Get(%d) diverged: flat (%d,%v), bucket (%d,%v)", i, k, vf, of, vb, ob)
			}
		}
		if flat.Len() != bkt.Len() {
			t.Fatalf("op %d: Len diverged: flat %d, bucket %d", i, flat.Len(), bkt.Len())
		}
	}
}
