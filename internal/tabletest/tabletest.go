// Package tabletest provides a conformance suite run against every hash
// table in this repository (Folklore, DRAMHiT's synchronous adapter,
// DRAMHiT-P, the locked baseline). It checks the sequential contract against
// a reference map, the reserved-key side slots, tombstone semantics, fill
// behaviour, and — under the race detector — concurrent linearizability
// smoke properties.
package tabletest

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dramhit/internal/table"
	"dramhit/internal/workload"
)

// Factory builds a fresh table with the given capacity.
type Factory func(n uint64) table.Map

// Cloner is implemented by adapters whose table.Map view is single-goroutine
// (e.g. DRAMHiT's Sync adapter, which owns a prefetch pipeline). The
// concurrency tests give each goroutine its own clone; clones share the
// underlying table storage.
type Cloner interface {
	Clone() table.Map
}

// localView returns a per-goroutine view of m.
func localView(m table.Map) table.Map {
	if c, ok := m.(Cloner); ok {
		return c.Clone()
	}
	return m
}

// release flushes a per-goroutine view's outstanding work (delegated writes
// sitting in unpublished queue sections) before the goroutine finishes.
func release(m table.Map) {
	if r, ok := m.(interface{ Release() }); ok {
		r.Release()
	}
}

// Shutdowner is implemented by table views that own background resources
// (DRAMHiT-P's delegation threads); the suite calls Shutdown when the
// subtest that created the view finishes.
type Shutdowner interface {
	Shutdown()
}

// Option adjusts the suite for a table's semantics.
type Option func(*options)

type options struct {
	looseCapacity bool
}

// LooseCapacity relaxes the tight-packing tests (Full, Wraparound) for
// partitioned tables, whose per-partition capacity means a table cannot
// promise to absorb exactly Cap() keys; a loose 25%-fill test replaces them.
func LooseCapacity() Option {
	return func(o *options) { o.looseCapacity = true }
}

// Run executes the full conformance suite.
func Run(t *testing.T, name string, f Factory, opts ...Option) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	// wrap gives each subtest a factory that tears down background
	// resources when the subtest ends.
	wrap := func(t *testing.T) Factory {
		return func(n uint64) table.Map {
			m := f(n)
			if s, ok := m.(Shutdowner); ok {
				t.Cleanup(s.Shutdown)
			}
			return m
		}
	}
	run := func(sub string, fn func(*testing.T, Factory)) {
		t.Run(name+"/"+sub, func(t *testing.T) { fn(t, wrap(t)) })
	}
	run("Basic", testBasic)
	run("ReservedKeys", testReservedKeys)
	run("Tombstone", testTombstone)
	run("Overwrite", testOverwrite)
	run("Upsert", testUpsert)
	if o.looseCapacity {
		run("LooseFill", testLooseFill)
	} else {
		run("Full", testFull)
		run("Wraparound", testWraparound)
	}
	run("VsMapRandomOps", testVsMap)
	run("QuickProperty", testQuick)
	run("ConcurrentDistinct", testConcurrentDistinct)
	run("ConcurrentSameKeys", testConcurrentSameKeys)
	run("ConcurrentUpsertCount", testConcurrentUpsert)
	run("ReadersNeverTorn", testReadersNeverTorn)
}

// testLooseFill checks that a table at 25% aggregate fill absorbs and
// returns every key, without demanding tight packing.
func testLooseFill(t *testing.T, f Factory) {
	m := f(1024)
	keys := workload.UniqueKeys(909, 256)
	for _, k := range keys {
		if !m.Put(k, k|1) {
			t.Fatalf("Put failed at 25%% fill")
		}
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k|1 {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
}

func testBasic(t *testing.T, f Factory) {
	m := f(1024)
	if _, ok := m.Get(42); ok {
		t.Fatal("empty table reports a key present")
	}
	if !m.Put(42, 100) {
		t.Fatal("Put failed on empty table")
	}
	if v, ok := m.Get(42); !ok || v != 100 {
		t.Fatalf("Get(42) = (%d, %v), want (100, true)", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if m.Cap() < 1024 {
		t.Fatalf("Cap = %d, want >= 1024", m.Cap())
	}
	if _, ok := m.Get(43); ok {
		t.Fatal("absent key reported present")
	}
}

func testReservedKeys(t *testing.T, f Factory) {
	m := f(64)
	// The three reserved key values must be fully usable by clients.
	for _, key := range []uint64{table.EmptyKey, table.TombstoneKey, table.MovedKey} {
		if _, ok := m.Get(key); ok {
			t.Fatalf("reserved key %x present in empty table", key)
		}
		if !m.Put(key, key+7) {
			t.Fatalf("Put(%x) failed", key)
		}
		if v, ok := m.Get(key); !ok || v != key+7 {
			t.Fatalf("Get(%x) = (%d, %v)", key, v, ok)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	// Delete and reinsert cycles on reserved keys (side slots may be
	// reused, unlike array slots).
	for i := 0; i < 3; i++ {
		if !m.Delete(table.EmptyKey) {
			t.Fatal("Delete(EmptyKey) reported absent")
		}
		if _, ok := m.Get(table.EmptyKey); ok {
			t.Fatal("deleted reserved key still present")
		}
		if !m.Put(table.EmptyKey, uint64(i)) {
			t.Fatal("reinsert of reserved key failed")
		}
		if v, _ := m.Get(table.EmptyKey); v != uint64(i) {
			t.Fatalf("reinserted reserved key has value %d, want %d", v, i)
		}
	}
	if _, ok := m.Upsert(table.TombstoneKey, 1); !ok {
		t.Fatal("Upsert on reserved key failed")
	}
}

func testTombstone(t *testing.T, f Factory) {
	m := f(256)
	keys := workload.UniqueKeys(101, 100)
	for _, k := range keys {
		m.Put(k, k)
	}
	if !m.Delete(keys[10]) {
		t.Fatal("Delete of present key returned false")
	}
	if m.Delete(keys[10]) {
		t.Fatal("second Delete of same key returned true")
	}
	if _, ok := m.Get(keys[10]); ok {
		t.Fatal("deleted key still visible")
	}
	// Other keys, including ones that may probe past the tombstone, stay
	// reachable.
	for i, k := range keys {
		if i == 10 {
			continue
		}
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("key %d lost after unrelated delete", i)
		}
	}
	// Reinsertion after deletion must work (it claims a fresh slot).
	if !m.Put(keys[10], 777) {
		t.Fatal("reinsert after delete failed")
	}
	if v, ok := m.Get(keys[10]); !ok || v != 777 {
		t.Fatalf("reinserted key = (%d, %v), want (777, true)", v, ok)
	}
	if m.Delete(0xabcdef0123) {
		t.Fatal("Delete of never-inserted key returned true")
	}
}

func testOverwrite(t *testing.T, f Factory) {
	m := f(128)
	for i := uint64(0); i < 10; i++ {
		m.Put(99, i)
		if v, _ := m.Get(99); v != i {
			t.Fatalf("after Put(99,%d), Get = %d", i, v)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("10 overwrites produced Len = %d, want 1", m.Len())
	}
}

func testUpsert(t *testing.T, f Factory) {
	m := f(128)
	for i := 1; i <= 5; i++ {
		v, ok := m.Upsert(7, 2)
		if !ok || v != uint64(2*i) {
			t.Fatalf("Upsert #%d = (%d, %v), want (%d, true)", i, v, ok, 2*i)
		}
	}
	if v, _ := m.Get(7); v != 10 {
		t.Fatalf("value after upserts = %d, want 10", v)
	}
	// Upsert must coexist with Put.
	m.Put(7, 100)
	if v, _ := m.Upsert(7, 1); v != 101 {
		t.Fatalf("Upsert after Put = %d, want 101", v)
	}
}

func testFull(t *testing.T, f Factory) {
	m := f(16)
	keys := workload.UniqueKeys(202, 64)
	inserted := 0
	for _, k := range keys {
		if m.Put(k, 1) {
			inserted++
		}
	}
	// All implementations must accept at least the slot count... but not
	// more than capacity (side slots excluded since UniqueKeys never emits
	// the reserved values with overwhelming probability).
	if inserted > m.Cap() {
		t.Fatalf("accepted %d inserts into %d slots", inserted, m.Cap())
	}
	if inserted < 16 {
		t.Fatalf("accepted only %d inserts into a 16-slot table", inserted)
	}
	// Everything accepted must be readable.
	ok := 0
	for _, k := range keys {
		if _, found := m.Get(k); found {
			ok++
		}
	}
	if ok != inserted {
		t.Fatalf("accepted %d but can read back %d", inserted, ok)
	}
}

func testWraparound(t *testing.T, f Factory) {
	// With a tiny table, probe chains must wrap around the end of the
	// array. Fill a 8-slot table completely and read everything back.
	m := f(8)
	keys := workload.UniqueKeys(303, 8)
	for _, k := range keys {
		if !m.Put(k, k^0xff) {
			t.Fatalf("Put into non-full table failed")
		}
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k^0xff {
			t.Fatalf("wraparound lost key: (%d, %v)", v, ok)
		}
	}
}

func testVsMap(t *testing.T, f Factory) {
	m := f(4096)
	ref := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(404))
	const keySpace = 512 // small key space forces overwrites, deletes, reinserts
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(keySpace))
		if k == 1 {
			k = table.TombstoneKey // exercise reserved keys in the mix
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put
			v := rng.Uint64() % (1 << 40)
			m.Put(k, v)
			ref[k] = v
		case 4, 5: // upsert
			got, _ := m.Upsert(k, 3)
			ref[k] += 3
			if got != ref[k] {
				t.Fatalf("op %d: Upsert(%d) = %d, want %d", i, k, got, ref[k])
			}
		case 6: // delete
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		default: // get
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("final Len = %d, reference has %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("final sweep: Get(%d) = (%d, %v), want (%d, true)", k, got, ok, want)
		}
	}
}

func testQuick(t *testing.T, f Factory) {
	// Property: for any sequence of (key, value) pairs, inserting them all
	// and reading them back returns the last value written per key.
	prop := func(pairs []struct{ K, V uint64 }) bool {
		if len(pairs) > 512 {
			pairs = pairs[:512]
		}
		m := f(2048)
		ref := make(map[uint64]uint64)
		for _, p := range pairs {
			v := p.V
			if v == ^uint64(0)-1 { // avoid the reserved in-flight value
				v--
			}
			m.Put(p.K, v)
			ref[p.K] = v
		}
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func testConcurrentDistinct(t *testing.T, f Factory) {
	// G goroutines insert disjoint key ranges concurrently; all keys must
	// be present afterwards.
	const g = 8
	const perG = 500
	m := f(8192)
	keys := workload.UniqueKeys(505, g*perG)
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lv := localView(m)
			for _, k := range keys[w*perG : (w+1)*perG] {
				lv.Put(k, k+1)
			}
			release(lv)
		}(w)
	}
	wg.Wait()
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k+1 {
			t.Fatalf("lost concurrent insert: Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	if m.Len() != g*perG {
		t.Fatalf("Len = %d, want %d", m.Len(), g*perG)
	}
}

func testConcurrentSameKeys(t *testing.T, f Factory) {
	// All goroutines hammer the same small key set with Puts of
	// recognizable values while readers verify they only ever see
	// recognizable values.
	const g = 4
	const iters = 2000
	m := f(256)
	keys := workload.UniqueKeys(606, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lv := localView(m)
			for i := 0; i < iters; i++ {
				k := keys[i%len(keys)]
				lv.Put(k, k^uint64(w+1)<<48)
			}
			release(lv)
		}(w)
	}
	badc := make(chan uint64, 1)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		lv := localView(m)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, k := range keys {
				v, ok := lv.Get(k)
				if !ok {
					continue // not yet inserted
				}
				if w := (v ^ k) >> 48; w < 1 || w > g {
					select {
					case badc <- v:
					default:
					}
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	select {
	case v := <-badc:
		t.Fatalf("reader observed unrecognizable value %x", v)
	default:
	}
}

func testConcurrentUpsert(t *testing.T, f Factory) {
	// The canonical k-mer counting property: G goroutines each upsert the
	// same K keys N times by +1; every counter must end at exactly G*N.
	const g = 6
	const n = 300
	m := f(1024)
	keys := workload.UniqueKeys(707, 20)
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lv := localView(m)
			for i := 0; i < n; i++ {
				for _, k := range keys {
					lv.Upsert(k, 1)
				}
			}
			release(lv)
		}()
	}
	wg.Wait()
	for _, k := range keys {
		if v, _ := m.Get(k); v != g*n {
			t.Fatalf("Upsert count for key %d = %d, want %d", k, v, g*n)
		}
	}
}

func testReadersNeverTorn(t *testing.T, f Factory) {
	// Writers store values that are a pure function of the key; a reader
	// that ever observes (key, value) where value != fn(key, writerTag)
	// has seen a torn pair.
	m := f(512)
	keys := workload.UniqueKeys(808, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(tag uint64) {
			defer wg.Done()
			lv := localView(m)
			for i := 0; i < 3000; i++ {
				k := keys[i%len(keys)]
				lv.Put(k, k*2+tag)
			}
			release(lv)
		}(uint64(w))
	}
	errc := make(chan uint64, 1)
	go func() {
		lv := localView(m)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, k := range keys {
				if v, ok := lv.Get(k); ok {
					if tag := v - k*2; tag > 2 {
						select {
						case errc <- v:
						default:
						}
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	select {
	case v := <-errc:
		t.Fatalf("torn read: observed value %d not produced by any writer", v)
	default:
	}
}
