package delegation

import (
	"sync"
	"testing"
)

func TestSingleProducerSingleConsumer(t *testing.T) {
	f := New(Config{Producers: 1, Consumers: 1, QueueCapacity: 64})
	p := f.Producer(0)
	c := f.Consumer(0)
	const n = 10000
	var got []uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Run(func(m Message) { got = append(got, m.A) })
	}()
	for i := uint64(0); i < n; i++ {
		p.Send(0, Message{A: i, B: i * 7})
	}
	p.Close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d arrived as %d (order violated)", i, v)
		}
	}
}

func TestMeshDelivery(t *testing.T) {
	// P producers × C consumers; each producer sends a tagged message
	// stream to every consumer; each consumer must receive exactly
	// P*perQueue messages with per-producer FIFO order.
	const P, C, perQueue = 4, 3, 2000
	f := New(Config{Producers: P, Consumers: C, QueueCapacity: 128})
	var wg sync.WaitGroup
	recvd := make([][]uint64, C) // consumer -> count per producer stream position check
	errs := make(chan string, C)
	for ci := 0; ci < C; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			next := make([]uint64, P) // expected next seq per producer
			count := 0
			cons := f.Consumer(ci)
			cons.Run(func(m Message) {
				prod := m.Aux
				if m.A != next[prod] {
					select {
					case errs <- "per-producer FIFO violated":
					default:
					}
				}
				next[prod]++
				count++
			})
			recvd[ci] = next
			if count != P*perQueue {
				select {
				case errs <- "wrong message count":
				default:
				}
			}
		}(ci)
	}
	for pi := 0; pi < P; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			p := f.Producer(pi)
			seq := make([]uint64, C)
			for i := 0; i < C*perQueue; i++ {
				c := i % C
				p.Send(c, Message{A: seq[c], Aux: uint64(pi)})
				seq[c]++
			}
			p.Close()
		}(pi)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	for ci := 0; ci < C; ci++ {
		for pi := 0; pi < P; pi++ {
			if recvd[ci][pi] != perQueue {
				t.Fatalf("consumer %d got %d messages from producer %d, want %d",
					ci, recvd[ci][pi], pi, perQueue)
			}
		}
	}
}

func TestBarrierWaitsForExecution(t *testing.T) {
	// After Barrier returns, every message sent before it must have been
	// executed by the consumers.
	const n = 5000
	f := New(Config{Producers: 1, Consumers: 2, QueueCapacity: 64})
	p := f.Producer(0)
	var executed [2]int
	var wg sync.WaitGroup
	for ci := 0; ci < 2; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			f.Consumer(ci).Run(func(m Message) { executed[ci]++ })
		}(ci)
	}
	for i := 0; i < n; i++ {
		p.Send(i%2, Message{A: uint64(i)})
	}
	p.Barrier()
	// The barrier guarantees execution; counts are written by the consumer
	// goroutines but those writes happen-before the ack the barrier waits
	// on only per-consumer... to keep the check simple, barrier again and
	// close, then join.
	sum := 0
	p.Close()
	wg.Wait()
	sum = executed[0] + executed[1]
	if sum != n {
		t.Fatalf("executed %d, want %d", sum, n)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// Messages sent before a barrier are all executed before any message
	// sent after it (per consumer, FIFO).
	f := New(Config{Producers: 1, Consumers: 1, QueueCapacity: 32})
	p := f.Producer(0)
	var seen []uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Consumer(0).Run(func(m Message) { seen = append(seen, m.A) })
	}()
	for i := uint64(0); i < 10; i++ {
		p.Send(0, Message{A: i})
	}
	p.Barrier()
	for i := uint64(100); i < 110; i++ {
		p.Send(0, Message{A: i})
	}
	p.Close()
	wg.Wait()
	if len(seen) != 20 {
		t.Fatalf("saw %d messages", len(seen))
	}
	for i := 0; i < 10; i++ {
		if seen[i] != uint64(i) || seen[10+i] != uint64(100+i) {
			t.Fatalf("barrier did not order: %v", seen)
		}
	}
}

func TestCloseWithoutMessages(t *testing.T) {
	f := New(Config{Producers: 2, Consumers: 2})
	var wg sync.WaitGroup
	for ci := 0; ci < 2; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			f.Consumer(ci).Run(func(Message) { t.Error("unexpected message") })
		}(ci)
	}
	for pi := 0; pi < 2; pi++ {
		f.Producer(pi).Close()
	}
	wg.Wait() // must terminate
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero consumers did not panic")
		}
	}()
	New(Config{Producers: 1, Consumers: 0})
}

func TestTrySendBackpressure(t *testing.T) {
	f := New(Config{Producers: 1, Consumers: 1, QueueCapacity: 8, Sections: 1})
	p := f.Producer(0)
	n := 0
	for p.TrySend(0, Message{}) {
		n++
		if n > 100 {
			t.Fatal("TrySend never failed with no consumer")
		}
	}
	if n == 0 {
		t.Fatal("TrySend failed immediately")
	}
}

func BenchmarkSendReceive1x1(b *testing.B) {
	f := New(Config{Producers: 1, Consumers: 1, QueueCapacity: 1024})
	p := f.Producer(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Consumer(0).Run(func(Message) {})
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(0, Message{A: uint64(i)})
	}
	p.Close()
	<-done
}
