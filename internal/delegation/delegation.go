// Package delegation implements DRAMHiT-P's scalable delegation fabric
// (paper §3.3): a full mesh of section queues connecting P producer threads
// to C consumer threads. Producers send fire-and-forget messages addressed
// to a consumer; consumers poll their incoming queues round-robin,
// prefetching the next queue before switching to it. A lightweight barrier
// lets a producer wait until everything it sent has been executed, which the
// partitioned hash table uses for read-your-writes adapters and orderly
// shutdown.
package delegation

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/queue"
)

// Message is the unit of delegation. The paper's microbenchmark uses
// 16-byte messages; the hash table packs (op, key, value) into the three
// words, with the op folded into Aux.
type Message struct {
	A, B uint64
	// Aux carries the operation code (and, for barrier messages, the
	// producer index).
	Aux uint64
}

// barrierOp is reserved for fabric-internal barrier messages.
const barrierOp = ^uint64(0)

// Config parameterizes a Fabric.
type Config struct {
	// Producers and Consumers set the mesh dimensions.
	Producers, Consumers int
	// QueueCapacity is the per-queue capacity in messages (default 512).
	QueueCapacity int
	// Sections is the number of sections per queue (default capacity/8;
	// larger sections amortize coherence traffic at the cost of latency).
	Sections int
}

// Fabric is the P×C mesh. Construct with New, then hand Producer i to the
// i-th producing goroutine and Consumer j to the j-th consuming goroutine.
type Fabric struct {
	cfg Config
	// queues[p][c] carries messages from producer p to consumer c.
	queues [][]*queue.SPSC[Message]
	// acks[p] counts barrier messages from producer p executed by any
	// consumer.
	acks []paddedCounter
	// closed[c] counts producers that signalled completion to consumer c.
	closed []paddedCounter

	mu        sync.Mutex
	producers []*Producer
	consumers []*Consumer
}

type paddedCounter struct {
	n atomic.Uint64
	_ [7]uint64
}

// New builds a fabric.
func New(cfg Config) *Fabric {
	if cfg.Producers <= 0 || cfg.Consumers <= 0 {
		panic("delegation: Producers and Consumers must be positive")
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 512
	}
	f := &Fabric{
		cfg:       cfg,
		queues:    make([][]*queue.SPSC[Message], cfg.Producers),
		acks:      make([]paddedCounter, cfg.Producers),
		closed:    make([]paddedCounter, cfg.Consumers),
		producers: make([]*Producer, cfg.Producers),
		consumers: make([]*Consumer, cfg.Consumers),
	}
	for p := range f.queues {
		f.queues[p] = make([]*queue.SPSC[Message], cfg.Consumers)
		for c := range f.queues[p] {
			f.queues[p][c] = queue.NewSPSC[Message](cfg.QueueCapacity, cfg.Sections)
		}
	}
	return f
}

// Producers returns the configured producer count.
func (f *Fabric) Producers() int { return f.cfg.Producers }

// Consumers returns the configured consumer count.
func (f *Fabric) Consumers() int { return f.cfg.Consumers }

// Producer returns the sending endpoint for producer index p. Endpoints are
// memoized — repeated calls return the same instance, which carries the
// barrier sequence state — and each must be used by one goroutine at a time.
func (f *Fabric) Producer(p int) *Producer {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.producers[p] == nil {
		f.producers[p] = &Producer{f: f, id: p, qs: f.queues[p]}
	}
	return f.producers[p]
}

// Consumer returns the polling endpoint for consumer index c. Endpoints are
// memoized and each must be used by one goroutine at a time.
func (f *Fabric) Consumer(c int) *Consumer {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.consumers[c] == nil {
		qs := make([]*queue.SPSC[Message], f.cfg.Producers)
		for p := 0; p < f.cfg.Producers; p++ {
			qs[p] = f.queues[p][c]
		}
		f.consumers[c] = &Consumer{f: f, id: c, qs: qs}
	}
	return f.consumers[c]
}

// Producer is the per-thread sending endpoint.
type Producer struct {
	f      *Fabric
	id     int
	qs     []*queue.SPSC[Message]
	sent   uint64 // barrier sequence
	closed bool
}

// Send delivers m to consumer c, spinning (with scheduler yields) while the
// queue is full. Delivery is fire-and-forget: there is no response channel,
// which is what keeps delegation within its tens-of-cycles budget.
func (p *Producer) Send(c int, m Message) {
	q := p.qs[c]
	for spins := 0; !q.Enqueue(m); spins++ {
		// The consumer is behind; make sure our earlier messages are
		// visible to it (it may be blocked on an unpublished section) and
		// let it run.
		q.Flush()
		if spins > 8 {
			runtime.Gosched()
		}
	}
}

// TrySend attempts a non-blocking delivery.
func (p *Producer) TrySend(c int, m Message) bool {
	return p.qs[c].Enqueue(m)
}

// Flush publishes any partially filled sections on all queues. Call at
// batch boundaries.
func (p *Producer) Flush() {
	for _, q := range p.qs {
		q.Flush()
	}
}

// Pending returns this producer's total unconsumed backlog across all of
// its queues — an instantaneous, racy estimate suitable for a queue-depth
// gauge, not for synchronization (use Barrier for that).
func (p *Producer) Pending() int {
	n := 0
	for _, q := range p.qs {
		n += q.PendingShared()
	}
	return n
}

// Barrier sends a barrier message to every consumer and waits until all of
// them have executed it, which — because each queue is FIFO — implies every
// earlier message from this producer has been executed too.
func (p *Producer) Barrier() {
	p.sent++
	target := p.sent * uint64(len(p.qs))
	for c := range p.qs {
		p.Send(c, Message{Aux: barrierOp, A: uint64(p.id)})
	}
	p.Flush()
	for spins := 0; p.f.acks[p.id].n.Load() < target; spins++ {
		if spins > 8 {
			runtime.Gosched()
		}
	}
}

// Close signals every consumer that this producer will send no more
// messages. Idempotent; must happen after the owning goroutine has
// quiesced (the caller provides that ordering).
func (p *Producer) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.Flush()
	for c := range p.qs {
		p.f.closed[c].n.Add(1)
	}
}

// Consumer is the per-thread polling endpoint.
type Consumer struct {
	f    *Fabric
	id   int
	qs   []*queue.SPSC[Message]
	next int
}

// Poll returns the next available message, scanning the incoming queues
// round-robin starting after the last served queue and prefetching the
// queue it will inspect next. ok is false when no queue currently has a
// published message.
func (c *Consumer) Poll() (Message, bool) {
	n := len(c.qs)
	for i := 0; i < n; i++ {
		idx := c.next
		c.next++
		if c.next == n {
			c.next = 0
		}
		// Prefetch the queue we will look at after this one (paper §3.3
		// "Consumer prefetches the next queue before trying to access it").
		c.qs[c.next].PrefetchNext()
		if m, ok := c.qs[idx].Dequeue(); ok {
			if m.Aux == barrierOp {
				c.f.acks[m.A].n.Add(1)
				continue
			}
			return m, true
		}
	}
	var zero Message
	return zero, false
}

// Done reports whether all producers have closed and every queue is
// drained. A consumer loop typically runs `for !c.Done() { m, ok := c.Poll();
// ... }`.
func (c *Consumer) Done() bool {
	if c.f.closed[c.id].n.Load() != uint64(c.f.cfg.Producers) {
		return false
	}
	// All producers closed after their final Flush, so anything sent is
	// published; check emptiness.
	for _, q := range c.qs {
		if q.Pending() > 0 {
			return false
		}
	}
	return true
}

// Run polls until Done, invoking fn for every message, yielding when idle.
// It is the canonical consumer loop. A consumer that stays idle for a long
// stretch backs off to short sleeps so parked delegation threads do not
// monopolize a CPU (the paper's consumers busy-poll on dedicated cores; Go
// consumers share cores with application goroutines).
func (c *Consumer) Run(fn func(Message)) {
	idle := 0
	for {
		m, ok := c.Poll()
		if ok {
			idle = 0
			fn(m)
			continue
		}
		if c.Done() {
			return
		}
		idle++
		switch {
		case idle > 4096:
			time.Sleep(20 * time.Microsecond)
		case idle > 2:
			runtime.Gosched()
		}
	}
}
