package dramhit_test

import (
	"sync"
	"testing"

	"dramhit"
)

// TestPublicAPISurface exercises every exported entry point end-to-end the
// way an external adopter would.
func TestPublicAPISurface(t *testing.T) {
	// Core table.
	tbl := dramhit.New(dramhit.Config{Slots: 1 << 12})
	if tbl.Window() != dramhit.DefaultPrefetchWindow {
		t.Errorf("default window = %d", tbl.Window())
	}
	h := tbl.NewHandle()
	keys := []uint64{1, 2, 3, 0, ^uint64(0)} // reserved keys are usable
	vals := []uint64{10, 20, 30, 40, 50}
	h.PutBatch(keys, vals)
	got := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, got, found)
	for i := range keys {
		if !found[i] || got[i] != vals[i] {
			t.Fatalf("key %d: (%d, %v)", keys[i], got[i], found[i])
		}
	}
	if tbl.Len() != len(keys) {
		t.Fatalf("Len = %d", tbl.Len())
	}

	// Raw request interface with OOO IDs.
	reqs := []dramhit.Request{
		{Op: dramhit.Upsert, Key: 99, Value: 7},
		{Op: dramhit.Get, Key: 99, ID: 1},
		{Op: dramhit.Delete, Key: 1},
		{Op: dramhit.Get, Key: 1, ID: 2},
	}
	resps := make([]dramhit.Response, 8)
	n := 0
	for len(reqs) > 0 {
		nreq, nresp := h.Submit(reqs, resps[n:])
		reqs = reqs[nreq:]
		n += nresp
	}
	for {
		nresp, done := h.Flush(resps[n:])
		n += nresp
		if done {
			break
		}
	}
	byID := map[uint64]dramhit.Response{}
	for _, r := range resps[:n] {
		byID[r.ID] = r
	}
	if r := byID[1]; !r.Found || r.Value != 7 {
		t.Errorf("upsert+get: %+v", r)
	}
	if r := byID[2]; r.Found {
		t.Errorf("deleted key still found: %+v", r)
	}

	// Stats.
	if st := h.Stats(); st.Ops() == 0 || st.Lines == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestPublicFolklore(t *testing.T) {
	f := dramhit.NewFolklore(256)
	f.Put(5, 50)
	if v, ok := f.Get(5); !ok || v != 50 {
		t.Fatalf("folklore get: (%d, %v)", v, ok)
	}
	if v, _ := f.Upsert(5, 1); v != 51 {
		t.Fatalf("folklore upsert: %d", v)
	}
	if !f.Delete(5) || f.Len() != 0 {
		t.Fatal("folklore delete")
	}
	var m dramhit.Map = f
	_ = m
}

func TestPublicPartitioned(t *testing.T) {
	p := dramhit.NewPartitioned(dramhit.PartitionedConfig{
		Slots: 1 << 12, Producers: 2, Consumers: 2,
	})
	p.Start()
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wh := p.NewWriteHandle()
			defer wh.Close()
			for i := 0; i < 500; i++ {
				wh.Upsert(uint64(i%50), 1)
			}
			wh.Barrier()
		}(w)
	}
	wg.Wait()
	r := p.NewReadHandle()
	for i := 0; i < 50; i++ {
		if v, ok := r.Get(uint64(i)); !ok || v != 20 {
			t.Fatalf("count(%d) = (%d, %v), want 20", i, v, ok)
		}
	}
	if p.Dropped() != 0 {
		t.Errorf("dropped %d", p.Dropped())
	}
}

func TestPublicBigTable(t *testing.T) {
	bt := dramhit.NewBigTable(64, 24)
	v := make([]byte, 24)
	for i := range v {
		v[i] = byte(i)
	}
	if !bt.Put(9, v) {
		t.Fatal("big put failed")
	}
	out := make([]byte, 24)
	if !bt.Get(9, out) || out[23] != 23 {
		t.Fatalf("big get: %v", out)
	}
	if bt.ValueSize() != 24 {
		t.Errorf("ValueSize = %d", bt.ValueSize())
	}
}

func TestReservedValueDocumented(t *testing.T) {
	if dramhit.ReservedValue != ^uint64(0)-1 {
		t.Errorf("ReservedValue = %x", dramhit.ReservedValue)
	}
}
