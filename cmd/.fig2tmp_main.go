package main

import (
	"fmt"
	"dramhit/internal/bench"
)

func main() {
	r, _ := bench.Get("fig2")
	a := r(bench.Config{Quick: true, Seed: 1})
	for _, s := range a.Series {
		fmt.Printf("%-18s", s.Name)
		for i := range s.X {
			fmt.Printf("  %.1f:%.0f", s.X[i], s.Y[i])
		}
		fmt.Println()
	}
}
