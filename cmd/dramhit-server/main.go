// dramhit-server serves the DRAMHiT table over TCP, speaking RESP
// (GET/SET/DEL/INCR/PING — redis-cli and any RESP client work) and the
// memcached text protocol (get/gets/set/delete/incr/decr, noreply) on
// separate listeners against one shared keyspace.
//
// Each connection is a goroutine owning one table handle; pipelined
// requests on a connection are parsed into the handle's byte pipeline and
// resolved under one prefetch window, so wire batching composes with
// DRAMHiT's memory-level batching. -backend folklore serves every request
// with a synchronous engine call instead — the A/B baseline the server-ab
// experiment measures against.
//
// Usage:
//
//	dramhit-server -resp :6379 -mc :11211 -obs :8090
//	redis-cli -p 6379 SET greeting hello
//	printf 'get greeting\r\n' | nc localhost 11211
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dramhit/internal/kvserver"
	"dramhit/internal/obs"
)

func main() {
	var (
		respAddr = flag.String("resp", ":6379", "RESP listener address; empty disables")
		mcAddr   = flag.String("mc", "", "memcached text listener address; empty disables")
		slots    = flag.Uint64("slots", 1<<20, "initial table slots (bucket layout resizes itself)")
		window   = flag.Int("window", 0, "prefetch-window depth per connection (0 = default)")
		backend  = flag.String("backend", "dramhit", "execution model: dramhit (pipelined) or folklore (synchronous)")
		obsAddr  = flag.String("obs", "", "observability HTTP address (/metrics etc.); empty disables")
		workers  = flag.Int("obsworkers", 0, "metric worker pool size (0 = default)")
	)
	flag.Parse()

	be, err := kvserver.ParseBackend(*backend)
	if err != nil {
		fail(err)
	}
	cfg := kvserver.Config{
		RespAddr:   *respAddr,
		McAddr:     *mcAddr,
		Slots:      *slots,
		Window:     *window,
		Backend:    be,
		ObsWorkers: *workers,
	}
	if *obsAddr != "" {
		cfg.Obs = obs.New()
	}
	srv, err := kvserver.New(cfg)
	if err != nil {
		fail(err)
	}
	if cfg.Obs != nil {
		osrv, err := obs.Serve(*obsAddr, cfg.Obs)
		if err != nil {
			srv.Close()
			fail(err)
		}
		defer osrv.Close()
		fmt.Printf("observability on http://%s/metrics\n", osrv.Addr)
	}
	if a := srv.RespAddr(); a != "" {
		fmt.Printf("resp listening on %s (backend=%s)\n", a, be)
	}
	if a := srv.McAddr(); a != "" {
		fmt.Printf("memcached listening on %s (backend=%s)\n", a, be)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dramhit-server:", err)
	os.Exit(1)
}
