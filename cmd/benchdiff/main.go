// Command benchdiff compares two benchmark JSON artifacts and gates on
// regression:
//
//	benchdiff old.json new.json
//	benchdiff -tol 0.15 -metrics '(^|\.)mops$' BENCH_ycsb.json run.json
//	benchdiff -metrics 'latency_ns\.p99' -lower 'latency' old.json new.json
//	benchdiff -metrics 'lines_per_op' -lower 'lines|probe' BENCH_layout.json new.json
//
// Both files are decoded as generic JSON and flattened to path → number
// (arrays of named objects — every runs[] in BENCH_*.json — key by name,
// so reordering runs does not shift paths). Paths matching -metrics are
// compared under the relative tolerance; paths matching -lower regress on
// increase (latencies) instead of decrease (throughput).
//
// Exit status: 0 all compared metrics within tolerance (improvements
// included), 1 at least one regression or a previously present metric
// missing from the new artifact, 2 usage or input error — including the
// case where -metrics selects nothing, so a renamed metric cannot
// silently disarm a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"dramhit/internal/bench"
)

func main() {
	tol := flag.Float64("tol", 0.15, "relative tolerance before a change gates")
	metricsRe := flag.String("metrics", "", `regexp selecting compared metric paths (default: paths ending in "mops")`)
	lowerRe := flag.String("lower", "", "regexp marking metrics where an increase is the regression (latencies)")
	minMetrics := flag.Int("min", 1, "fail unless at least this many metrics matched")
	quiet := flag.Bool("q", false, "print only regressions and the verdict")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of text")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.json new.json")
		os.Exit(2)
	}

	opts := bench.DiffOptions{Tol: *tol, MinMetrics: *minMetrics}
	var err error
	if *metricsRe != "" {
		if opts.Metrics, err = regexp.Compile(*metricsRe); err != nil {
			fail(fmt.Errorf("-metrics: %v", err))
		}
	}
	if *lowerRe != "" {
		if opts.LowerBetter, err = regexp.Compile(*lowerRe); err != nil {
			fail(fmt.Errorf("-lower: %v", err))
		}
	}

	oldDoc := readJSON(flag.Arg(0))
	newDoc := readJSON(flag.Arg(1))
	rep, err := bench.Diff(oldDoc, newDoc, opts)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		for _, row := range rep.Rows {
			mark := " "
			switch {
			case row.Regression:
				mark = "✗"
			case row.Improvement:
				mark = "+"
			}
			if *quiet && !row.Regression {
				continue
			}
			dir := ""
			if row.LowerBetter {
				dir = " (lower=better)"
			}
			fmt.Printf("%s %-58s %14.4g → %-14.4g %+7.1f%%%s\n",
				mark, row.Path, row.Old, row.New, row.Delta*100, dir)
		}
		for _, p := range rep.Missing {
			fmt.Printf("✗ %-58s missing from new artifact\n", p)
		}
		if !*quiet {
			for _, p := range rep.Added {
				fmt.Printf("? %-58s new metric (not gated)\n", p)
			}
		}
	}

	if rep.Failed() {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — %d regression(s), %d missing metric(s) beyond ±%.0f%%\n",
			rep.Regressions, len(rep.Missing), rep.Tol*100)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: ok — %d metric(s) within ±%.0f%%\n", len(rep.Rows), rep.Tol*100)
}

func readJSON(path string) any {
	b, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	return doc
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
