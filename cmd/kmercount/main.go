// Command kmercount counts k-mers with the real (non-simulated) hash
// tables: DRAMHiT's batched upsert pipeline, DRAMHiT-P's delegated writers,
// the Folklore baseline, or the CHTKC-style chained counter. It reads a
// FASTA file or generates a synthetic genome with the paper's measured
// k-mer skew profile, and reports throughput and the top-N hottest k-mers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dramhit/internal/chtkc"
	"dramhit/internal/dramhit"
	"dramhit/internal/dramhitp"
	"dramhit/internal/folklore"
	"dramhit/internal/kmer"
)

func main() {
	k := flag.Int("k", 16, "k-mer length (1..32)")
	backend := flag.String("table", "dramhit", "dramhit | dramhit-p | folklore | chtkc")
	fasta := flag.String("fasta", "", "FASTA file to read (default: synthetic genome)")
	profile := flag.String("profile", "dmel", "synthetic profile: dmel | fvesca")
	bases := flag.Int("bases", 4_000_000, "synthetic genome size in bases")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "counting goroutines")
	top := flag.Int("top", 10, "hottest k-mers to print")
	canonical := flag.Bool("canonical", false, "count canonical k-mers (strand-merged, like Jellyfish/KMC3)")
	flag.Parse()
	countSeq := kmer.CountSequence
	if *canonical {
		countSeq = kmer.CountSequenceCanonical
	}

	var records [][]byte
	if *fasta != "" {
		f, err := os.Open(*fasta)
		if err != nil {
			fail(err)
		}
		records, err = kmer.ReadFASTA(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		var p kmer.GenomeProfile
		switch *profile {
		case "dmel":
			p = kmer.DMelanogaster(*bases)
		case "fvesca":
			p = kmer.FVesca(*bases)
		default:
			fail(fmt.Errorf("unknown profile %q", *profile))
		}
		records = p.Generate()
		fmt.Printf("generated %s: %d records, %d bases\n", p.Name, len(records), *bases)
	}

	// Shard records across workers.
	shards := make([][][]byte, *workers)
	for i, r := range records {
		shards[i%*workers] = append(shards[i%*workers], r)
	}

	const slots = 1 << 24
	var total int64
	var getCount func(km uint64) (uint64, bool)
	start := time.Now()

	runWorkers := func(mk func(w int) kmer.Counter) {
		var wg sync.WaitGroup
		counts := make([]int, *workers)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := mk(w)
				for _, rec := range shards[w] {
					counts[w] += countSeq(c, rec, *k)
				}
				if f, ok := c.(interface{ Flush() }); ok {
					f.Flush()
				}
			}(w)
		}
		wg.Wait()
		for _, c := range counts {
			total += int64(c)
		}
	}

	switch *backend {
	case "dramhit":
		t := dramhit.New(dramhit.Config{Slots: slots})
		runWorkers(func(int) kmer.Counter { return kmer.NewDRAMHiTCounter(t.NewHandle(), 16) })
		s := t.NewSync()
		getCount = s.Get
	case "folklore":
		t := folklore.New(slots)
		runWorkers(func(int) kmer.Counter { return kmer.FolkloreCounter{T: t} })
		getCount = t.Get
	case "chtkc":
		t := chtkc.New(slots / 2)
		runWorkers(func(int) kmer.Counter { return kmer.NewCHTKCCounter(t) })
		getCount = t.Get
	case "dramhit-p":
		t := dramhitp.New(dramhitp.Config{
			Slots: slots, Producers: *workers, Consumers: max(1, *workers/2),
		})
		t.Start()
		runWorkers(func(int) kmer.Counter {
			return kmer.PartitionedCounter{W: t.NewWriteHandle(), R: t.NewReadHandle()}
		})
		r := t.NewReadHandle()
		getCount = r.Get
		defer t.Close()
	default:
		fail(fmt.Errorf("unknown table %q", *backend))
	}
	elapsed := time.Since(start)

	fmt.Printf("table=%s k=%d workers=%d: %d k-mers in %v (%.1f Mops)\n",
		*backend, *k, *workers, total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)

	// Hottest k-mers: recount the distinct set via a reference sweep (the
	// tables do not iterate; this is a reporting convenience, not the
	// benchmarked path).
	ref := kmer.MapCounter{}
	for _, rec := range records {
		countSeq(ref, rec, *k)
	}
	type kv struct {
		km uint64
		n  uint64
	}
	all := make([]kv, 0, len(ref))
	for km, n := range ref {
		all = append(all, kv{km, n})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	frac, distinct, sum := kmer.SkewStats(map[uint64]uint64(ref), 25)
	fmt.Printf("distinct=%d total=%d top-25 coverage=%.1f%%\n", distinct, sum, frac*100)
	for i := 0; i < *top && i < len(all); i++ {
		got, ok := getCount(all[i].km)
		status := "ok"
		if !ok || got != all[i].n {
			status = fmt.Sprintf("MISMATCH got %d", got)
		}
		fmt.Printf("  %s  %d  (%s)\n", kmer.Decode(all[i].km, *k), all[i].n, status)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kmercount:", err)
	os.Exit(1)
}
