// Command simcal prints the simulator's throughput on the paper's anchor
// configurations next to the published numbers, for calibration work.
package main

import (
	"flag"
	"fmt"

	"dramhit/internal/memsim"
	"dramhit/internal/simtable"
)

func main() {
	ops := flag.Int("ops", 150_000, "measured ops per run")
	flag.Parse()

	intel := memsim.IntelSkylake()
	amd := memsim.AMDMilan()

	type anchor struct {
		name    string
		machine *memsim.Machine
		kind    simtable.Kind
		threads int
		slots   uint64
		theta   float64
		mix     simtable.OpMix
		paper   float64
	}
	anchors := []anchor{
		{"intel large uni ins folklore", intel, simtable.Folklore, 64, simtable.DefaultLarge, 0, simtable.Inserts, 417},
		{"intel large uni ins dramhit", intel, simtable.DRAMHiT, 64, simtable.DefaultLarge, 0, simtable.Inserts, 792},
		{"intel large uni ins dramhit-p", intel, simtable.DRAMHiTP, 64, simtable.DefaultLarge, 0, simtable.Inserts, 671},
		{"intel large uni find folklore", intel, simtable.Folklore, 64, simtable.DefaultLarge, 0, simtable.Finds, 451},
		{"intel large uni find dramhit", intel, simtable.DRAMHiT, 64, simtable.DefaultLarge, 0, simtable.Finds, 973},
		{"intel large uni find dramhit-p", intel, simtable.DRAMHiTP, 64, simtable.DefaultLarge, 0, simtable.Finds, 951},
		{"intel small uni ins folklore", intel, simtable.Folklore, 64, simtable.DefaultSmall, 0, simtable.Inserts, 441},
		{"intel small uni ins dramhit", intel, simtable.DRAMHiT, 64, simtable.DefaultSmall, 0, simtable.Inserts, 1180},
		{"intel small uni find folklore", intel, simtable.Folklore, 64, simtable.DefaultSmall, 0, simtable.Finds, 1616},
		{"intel small uni find dramhit", intel, simtable.DRAMHiT, 64, simtable.DefaultSmall, 0, simtable.Finds, 1513},
		{"intel large skew ins folklore", intel, simtable.Folklore, 64, simtable.DefaultLarge, 1.09, simtable.Inserts, 137},
		{"intel large skew ins dramhit", intel, simtable.DRAMHiT, 64, simtable.DefaultLarge, 1.09, simtable.Inserts, 143},
		{"intel large skew ins dramhit-p", intel, simtable.DRAMHiTP, 64, simtable.DefaultLarge, 1.09, simtable.Inserts, 245},
		{"intel large skew find folklore", intel, simtable.Folklore, 64, simtable.DefaultLarge, 1.09, simtable.Finds, 1499},
		{"intel large skew find dramhit", intel, simtable.DRAMHiT, 64, simtable.DefaultLarge, 1.09, simtable.Finds, 2820},
		// The paper's AMD headline numbers (1192 find / 1052 insert) are the
		// PEAKS, reached near 32 threads; throughput drops sharply beyond
		// (Figure 10b), while DRAMHiT-P keeps growing.
		{"amd large uni find dramhit@32", amd, simtable.DRAMHiT, 32, simtable.DefaultLarge, 0, simtable.Finds, 1192},
		{"amd large uni ins dramhit@32", amd, simtable.DRAMHiT, 32, simtable.DefaultLarge, 0, simtable.Inserts, 1052},
		{"amd large uni find dramhit@128", amd, simtable.DRAMHiT, 128, simtable.DefaultLarge, 0, simtable.Finds, 700},
		{"amd large uni ins dramhit-p@128", amd, simtable.DRAMHiTP, 128, simtable.DefaultLarge, 0, simtable.Inserts, 900},
	}
	fmt.Printf("%-34s %9s %9s %7s\n", "anchor", "paper", "sim", "ratio")
	for _, a := range anchors {
		r := simtable.Run(simtable.Config{
			Machine: a.machine, Kind: a.kind, Threads: a.threads,
			Slots: a.slots, Theta: a.theta, MeasureOps: *ops, Seed: 1,
		}, a.mix)
		fmt.Printf("%-34s %9.0f %9.0f %7.2f\n", a.name, a.paper, r.Mops, r.Mops/a.paper)
	}
}
