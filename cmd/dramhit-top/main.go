// Command dramhit-top is a live terminal view over a running table's
// observability endpoint (loadgen -metrics, dramhit-bench -metrics, or any
// process serving dramhit.ServeObservability):
//
//	dramhit-top -addr localhost:8090
//	dramhit-top -addr localhost:8090 -interval 1s -k 20
//	dramhit-top -addr localhost:8090 -once
//
// Each frame scrapes the registry snapshot from /debug/vars and the
// structural heatmaps from /heatmap and renders: operation rates (derived
// from counter deltas between frames), the merged and per-op-class latency
// summaries, the hottest keys from the Space-Saving sketch, and one
// occupancy sparkline per heatmap source. -once prints a single frame and
// exits (scriptable; no screen clearing), which is also how CI smokes the
// endpoint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dramhit/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:8090", "observability endpoint host:port")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	topk := flag.Int("k", 10, "hot keys to show")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	var prev *frame
	for {
		f, err := scrape(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dramhit-top: %v\n", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear
		}
		render(os.Stdout, base, f, prev, *topk)
		if *once {
			return
		}
		prev = f
		time.Sleep(*interval)
	}
}

// frame is one scrape: the registry snapshot, the heatmaps, and when it
// was taken (rates are computed from deltas between consecutive frames).
type frame struct {
	at   time.Time
	snap obs.Snapshot
	maps []obs.Heatmap
}

func scrape(client *http.Client, base string) (*frame, error) {
	f := &frame{at: time.Now()}

	// /debug/vars is the expvar surface; the registry snapshot is published
	// under the dramhit_obs key.
	var vars struct {
		Obs obs.Snapshot `json:"dramhit_obs"`
	}
	if err := getJSON(client, base+"/debug/vars", &vars); err != nil {
		return nil, err
	}
	f.snap = vars.Obs

	var hm struct {
		Heatmaps []obs.Heatmap `json:"heatmaps"`
	}
	if err := getJSON(client, base+"/heatmap", &hm); err != nil {
		return nil, err
	}
	f.maps = hm.Heatmaps
	return f, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// opCounters are the totals rendered in the rate table, in display order.
var opCounters = []string{"gets", "puts", "upserts", "deletes", "hits",
	"combined_upserts", "piggybacked_gets", "parks", "queue_sends"}

func render(w *os.File, base string, f, prev *frame, topk int) {
	s := &f.snap
	fmt.Fprintf(w, "dramhit-top  %s  up %s  workers %d  trace events %d\n",
		base, (time.Duration(s.UptimeSeconds * float64(time.Second))).Round(time.Second),
		len(s.Workers), s.TraceEvents)
	fmt.Fprintln(w, strings.Repeat("─", 78))

	// Rates: delta over the previous frame when there is one.
	fmt.Fprintf(w, "%-18s %14s %12s\n", "counter", "total", "per sec")
	for _, name := range opCounters {
		total := s.Totals[name]
		if total == 0 {
			continue
		}
		rate := ""
		if prev != nil {
			dt := f.at.Sub(prev.at).Seconds()
			if dt > 0 {
				rate = fmt.Sprintf("%.0f", float64(total-prev.snap.Totals[name])/dt)
			}
		}
		fmt.Fprintf(w, "%-18s %14d %12s\n", name, total, rate)
	}

	if s.Latency.Count > 0 {
		fmt.Fprintf(w, "\nlatency ns   %10s %8s %8s %8s %8s %8s\n", "count", "p50", "p99", "p99.9", "max", "mean")
		fmt.Fprintf(w, "%-12s %10d %8.0f %8.0f %8.0f %8.0f %8.0f\n", "all",
			s.Latency.Count, s.Latency.P50, s.Latency.P99, s.Latency.P999, s.Latency.Max, s.Latency.Mean)
		for _, cls := range obs.OpClassNames {
			h, ok := s.OpLatency[cls]
			if !ok || h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "%-12s %10d %8.0f %8.0f %8.0f %8.0f %8.0f\n", cls,
				h.Count, h.P50, h.P99, h.P999, h.Max, h.Mean)
		}
	}

	if len(s.HotKeys) > 0 {
		fmt.Fprintf(w, "\nhot keys (Space-Saving; count overestimates by ≤err)\n")
		var sum uint64
		for _, it := range s.HotKeys {
			sum += it.Count
		}
		n := topk
		if n > len(s.HotKeys) {
			n = len(s.HotKeys)
		}
		for i := 0; i < n; i++ {
			it := s.HotKeys[i]
			share := ""
			if sum > 0 {
				share = fmt.Sprintf("%5.1f%% of top", float64(it.Count)*100/float64(sum))
			}
			fmt.Fprintf(w, "  #%-3d %#018x  count %-10d err %-8d %s\n", i+1, it.Key, it.Count, it.Err, share)
		}
	}

	if len(f.maps) > 0 {
		fmt.Fprintf(w, "\noccupancy by source (region fill 0–100%%)\n")
		for _, h := range f.maps {
			fill := h.Gauges["fill"]
			fmt.Fprintf(w, "  %-10s %-7s fill %5.1f%%  %s\n", h.Source, h.Kind, fill*100, spark(h.Regions, 48))
			var parts []string
			for _, d := range h.Dists {
				if d.Count > 0 {
					parts = append(parts, fmt.Sprintf("%s mean=%.2f max=%d", d.Name, d.Mean, d.Max))
				}
			}
			if len(parts) > 0 {
				fmt.Fprintf(w, "  %-10s %s\n", "", strings.Join(parts, "  "))
			}
		}
	}

	if len(s.Sources) > 0 {
		names := make([]string, 0, len(s.Sources))
		for name := range s.Sources {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\ntable gauges\n")
		for _, name := range names {
			src := s.Sources[name]
			keys := make([]string, 0, len(src))
			for k := range src {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var parts []string
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%g", k, src[k]))
			}
			line := strings.Join(parts, " ")
			if len(line) > 66 {
				line = line[:66] + "…"
			}
			fmt.Fprintf(w, "  %-10s %s\n", name, line)
		}
	}
}

// sparkBlocks are the eight-level bar glyphs of the occupancy sparkline.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// spark renders fills (each in [0,1]) as a width-cell sparkline, averaging
// neighbouring regions down when there are more regions than cells.
func spark(fills []float64, width int) string {
	if len(fills) == 0 {
		return ""
	}
	if width > len(fills) {
		width = len(fills)
	}
	out := make([]rune, width)
	for c := 0; c < width; c++ {
		lo, hi := c*len(fills)/width, (c+1)*len(fills)/width
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += fills[i]
		}
		v := sum / float64(hi-lo)
		idx := int(v * float64(len(sparkBlocks)))
		if idx >= len(sparkBlocks) {
			idx = len(sparkBlocks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[c] = sparkBlocks[idx]
	}
	return string(out)
}
