// Command dramhit-bench regenerates the tables and figures of the DRAMHiT
// paper's evaluation. Each experiment runs on the cycle-level machine model
// (see DESIGN.md for the substitution rationale) and prints the same rows
// and series the paper reports.
//
// Usage:
//
//	dramhit-bench -list
//	dramhit-bench -exp fig6b
//	dramhit-bench -exp all -quick -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dramhit/internal/bench"
	"dramhit/internal/obs"
	"dramhit/internal/table"
)

func main() {
	exp := flag.String("exp", "", "experiment ID (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	quick := flag.Bool("quick", false, "reduced op counts and sweep points")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "directory to also write one text + one JSON file per experiment")
	benchjson := flag.String("benchjson", "", "run the ycsb experiment and write its machine-readable summary (schema "+bench.YCSBSchema+") to this path")
	resizejson := flag.String("resizejson", "", "run the resize-ab experiment and write its machine-readable summary (schema "+bench.ResizeSchema+") to this path")
	metrics := flag.String("metrics", "", "serve observability (Prometheus /metrics, /trace, pprof) on this address while experiments run, e.g. :8090")
	probeKernel := flag.String("probekernel", "", "probe kernel for real-execution experiments: swar|scalar (default swar)")
	probeFilter := flag.String("probefilter", "", "probe filter for real-execution experiments: tags|none (default tags)")
	missRatio := flag.Float64("missratio", 0, "fraction of lookups sent to absent keys, for experiments that honor it")
	combiningFlag := flag.String("combining", "", "in-window request combining for real-execution experiments: on|off (default on)")
	governorFlag := flag.String("governor", "auto", "adaptive pipeline governor on the dramhit cells of real-execution experiments: off|auto|direct")
	governorjson := flag.String("governorjson", "", "run the governor-ab experiment and write its machine-readable summary (schema "+bench.GovernorSchema+") to this path")
	shardjson := flag.String("shardjson", "", "run the shard-ab experiment and write its machine-readable summary (schema "+bench.ShardSchema+") to this path")
	layoutjson := flag.String("layoutjson", "", "run the layout-ab experiment and write its machine-readable summary (schema "+bench.LayoutSchema+") to this path")
	introspectjson := flag.String("introspectjson", "", "run the introspect-ab experiment and write its machine-readable summary (schema "+bench.IntrospectSchema+") to this path")
	serverjson := flag.String("serverjson", "", "run the server-ab experiment and write its machine-readable summary (schema "+bench.ServerSchema+") to this path")
	layoutFlag := flag.String("layout", "flat", "physical slot layout for the real-execution experiments that honor it: flat|bucket (layout-ab runs both by construction)")
	flag.Parse()

	kernel, err := table.ParseProbeKernel(*probeKernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
		os.Exit(2)
	}
	filter, err := table.ParseProbeFilter(*probeFilter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
		os.Exit(2)
	}
	if *missRatio < 0 || *missRatio > 1 {
		fmt.Fprintln(os.Stderr, "dramhit-bench: -missratio must be in [0,1]")
		os.Exit(2)
	}
	layout, err := table.ParseLayout(*layoutFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
		os.Exit(2)
	}
	combining, err := table.ParseCombining(*combiningFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
		os.Exit(2)
	}
	governor, err := table.ParseGovernor(*governorFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	var liveReg *obs.Registry
	if *metrics != "" {
		liveReg = obs.New()
		srv, err := obs.Serve(*metrics, liveReg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dramhit-bench: observability on http://%s/metrics\n", srv.Addr)
	}
	if *exp == "" && *benchjson == "" && *resizejson == "" && *governorjson == "" && *shardjson == "" && *layoutjson == "" && *introspectjson == "" && *serverjson == "" {
		fmt.Fprintln(os.Stderr, "usage: dramhit-bench -exp <id|all> [-quick] [-out dir]; -list shows IDs")
		os.Exit(2)
	}

	var ids []string
	if *exp != "" {
		ids = []string{*exp}
		if *exp == "all" {
			ids = bench.IDs()
		}
	}
	cfg := bench.Config{
		Quick:       *quick,
		Seed:        *seed,
		ProbeKernel: kernel,
		ProbeFilter: filter,
		MissRatio:   *missRatio,
		Combining:   combining,
		Governor:    governor,
		Observe:     liveReg,
		Layout:      layout,
	}
	if *benchjson != "" {
		start := time.Now()
		a, sum := bench.RunYCSB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(ycsb in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*benchjson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *benchjson)
	}
	if *governorjson != "" {
		start := time.Now()
		a, sum := bench.RunGovernorAB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(governor-ab in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*governorjson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *governorjson)
	}
	if *shardjson != "" {
		start := time.Now()
		a, sum := bench.RunShardAB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(shard-ab in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*shardjson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *shardjson)
	}
	if *layoutjson != "" {
		start := time.Now()
		a, sum := bench.RunLayoutAB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(layout-ab in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*layoutjson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *layoutjson)
	}
	if *introspectjson != "" {
		start := time.Now()
		a, sum := bench.RunIntrospectAB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(introspect-ab in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*introspectjson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *introspectjson)
	}
	if *serverjson != "" {
		start := time.Now()
		a, sum := bench.RunServerAB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(server-ab in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*serverjson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *serverjson)
	}
	if *resizejson != "" {
		start := time.Now()
		a, sum := bench.RunResizeAB(cfg)
		fmt.Print(bench.Format(a))
		fmt.Printf("(resize-ab in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if err := bench.WriteJSONFile(*resizejson, sum); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dramhit-bench: wrote %s\n", *resizejson)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		r, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dramhit-bench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		a := r(cfg)
		text := bench.Format(a)
		fmt.Print(text)
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
				os.Exit(1)
			}
			js, err := a.JSON()
			if err == nil {
				err = os.WriteFile(filepath.Join(*out, id+".json"), js, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "dramhit-bench:", err)
				os.Exit(1)
			}
		}
	}
	_ = strings.TrimSpace
}
