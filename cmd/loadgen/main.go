// Command loadgen drives the real hash tables with the standard YCSB core
// workloads (A–F): a load phase inserting the initial dataset, then a
// timed run phase with per-operation latency percentiles. Use it to compare
// the designs on your own host the way key-value-store papers are compared.
//
//	loadgen -workload A -table dramhit -records 1000000 -ops 2000000
//	loadgen -workload C -table dramhit-p -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"dramhit"
	"dramhit/internal/latency"
	"dramhit/internal/ycsb"
)

func main() {
	workloadName := flag.String("workload", "A", "YCSB core workload: A-F")
	backend := flag.String("table", "dramhit", "dramhit | dramhit-p | folklore | resizable")
	records := flag.Uint64("records", 1_000_000, "rows loaded before the run")
	ops := flag.Int("ops", 2_000_000, "operations in the timed run")
	workers := flag.Int("workers", 4, "concurrent client goroutines")
	missRatio := flag.Float64("missratio", 0, "fraction of reads redirected to guaranteed-absent keys")
	theta := flag.Float64("theta", -1, "zipfian skew of the key stream; negative = workload default")
	combiningFlag := flag.String("combining", "on", "in-window request combining: on | off")
	flag.Parse()

	mix, err := ycsb.ByName(*workloadName)
	if err != nil {
		fail(err)
	}
	if *missRatio < 0 || *missRatio > 1 {
		fail(fmt.Errorf("-missratio must be in [0,1], got %v", *missRatio))
	}
	if *theta >= 1 {
		fail(fmt.Errorf("-theta must be negative (default) or in [0,1), got %v", *theta))
	}
	combining, err := dramhit.ParseCombining(*combiningFlag)
	if err != nil {
		fail(err)
	}

	// view is the per-worker synchronous face over whichever backend.
	type view struct {
		get func(k uint64) (uint64, bool)
		put func(k, v uint64)
		fin func()
	}
	var mkView func(w int) view
	var teardown func()

	slots := nextPow2(*records * 2)
	switch *backend {
	case "dramhit":
		t := dramhit.New(dramhit.Config{Slots: slots, Combining: combining})
		h := t.NewHandle()
		h.PutBatch(ycsb.LoadKeys(*records, 1), make([]uint64, *records))
		mkView = func(int) view {
			s := t.NewSync()
			return view{get: s.Get, put: func(k, v uint64) { s.Put(k, v) }, fin: func() {}}
		}
	case "folklore":
		t := dramhit.NewFolklore(slots)
		for _, k := range ycsb.LoadKeys(*records, 1) {
			t.Put(k, 0)
		}
		mkView = func(int) view {
			return view{get: t.Get, put: func(k, v uint64) { t.Put(k, v) }, fin: func() {}}
		}
	case "resizable":
		t := dramhit.NewResizable(slots)
		for _, k := range ycsb.LoadKeys(*records, 1) {
			t.Put(k, 0)
		}
		mkView = func(int) view {
			return view{get: t.Get, put: func(k, v uint64) { t.Put(k, v) }, fin: func() {}}
		}
	case "dramhit-p":
		t := dramhit.NewPartitioned(dramhit.PartitionedConfig{
			Slots: slots, Producers: *workers + 1, Consumers: max(1, *workers/2),
			Combining: combining,
		})
		t.Start()
		teardown = t.Close
		w := t.NewWriteHandle()
		for _, k := range ycsb.LoadKeys(*records, 1) {
			w.Put(k, 0)
		}
		w.Barrier()
		w.Close()
		mkView = func(int) view {
			wh := t.NewWriteHandle()
			rh := t.NewReadHandle()
			return view{
				get: rh.Get,
				put: func(k, v uint64) { wh.Put(k, v) },
				fin: func() { wh.Flush(); wh.Barrier(); wh.Close() },
			}
		}
	default:
		fail(fmt.Errorf("unknown table %q", *backend))
	}

	recs := make([]*latency.Recorder, *workers)
	for i := range recs {
		recs[i] = latency.NewRecorder(1 << 18)
	}

	start := time.Now()
	var wg sync.WaitGroup
	perWorker := *ops / *workers
	for wi := 0; wi < *workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			v := mkView(wi)
			g := ycsb.NewGeneratorMissTheta(mix, *records, int64(wi+1), *missRatio, *theta)
			rec := recs[wi]
			for i := 0; i < perWorker; i++ {
				op := g.Next()
				t0 := time.Now()
				switch op.Kind {
				case ycsb.Read:
					v.get(op.Key)
				case ycsb.Update, ycsb.Insert:
					v.put(op.Key, uint64(i))
				case ycsb.ReadModifyWrite:
					if old, ok := v.get(op.Key); ok {
						v.put(op.Key, old+1)
					} else {
						v.put(op.Key, 1)
					}
				case ycsb.Scan:
					for j := 0; j < op.ScanLen; j++ {
						v.get(op.Key + uint64(j))
					}
				}
				rec.Add(float64(time.Since(t0).Nanoseconds()))
			}
			v.fin()
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if teardown != nil {
		teardown()
	}

	var total uint64
	for _, r := range recs {
		total += r.Count()
	}

	missNote := ""
	if *missRatio > 0 {
		missNote = fmt.Sprintf(", miss %.0f%%", *missRatio*100)
	}
	if *theta >= 0 {
		missNote += fmt.Sprintf(", theta %.2f", *theta)
	}
	if combining == dramhit.CombineOff {
		missNote += ", combining off"
	}
	fmt.Printf("ycsb-%s on %s: %d ops, %d workers%s, %v (%.2f Mops)\n",
		mix.Name, *backend, total, *workers, missNote, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	for wi, r := range recs {
		fmt.Printf("  worker %d latency ns: %s\n", wi, r.CDF().String())
	}
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
