// Command loadgen drives the real hash tables with the standard YCSB core
// workloads (A–F): a load phase inserting the initial dataset, then a
// timed run phase with per-operation latency percentiles. Use it to compare
// the designs on your own host the way key-value-store papers are compared.
//
//	loadgen -workload A -table dramhit -records 1000000 -ops 2000000
//	loadgen -workload C -table dramhit-p -workers 8
//	loadgen -workload C -metrics :8090 -json run.json
//	loadgen -workload C -table dramhit -governor auto
//	loadgen -workload C -table sharded -shards 4 -splitat 0.5 -json run.json
//
// -governor {off,auto,direct} engages the adaptive pipeline governor on
// the dramhit backends (auto lets the hill-climber pick between the
// prefetch pipeline and synchronous direct probes per workload).
//
// -table sharded drives the horizontal shard router (internal/shardmap)
// with -shards initial shards; -splitat f forces a live shard split once
// fraction f of the timed ops has completed, so the split's cooperative
// migration races the op stream. The summary then includes per-shard fill
// and the split's install-to-complete latency.
//
// With -metrics the run exposes the unified observability layer over HTTP
// (Prometheus text at /metrics, sampled lifecycle traces at /trace, expvar
// and pprof under /debug/) while it executes; with -json the run's
// configuration, throughput, and latency percentiles land in a
// machine-readable file using the same schema as BENCH_ycsb.json entries.
// Every timed run additionally classifies each operation by kind and
// outcome (get_hit, get_miss, put, upsert, delete_hit, delete_miss) and
// reports per-class counts and latency percentiles; -introspect arms the
// table-side introspection extras on top (the hot-key Space-Saving sketch
// and per-op-class latency stamping inside the table), whose results land
// on /metrics, /heatmap and in the JSON summary's hot_keys.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dramhit"
	"dramhit/internal/bench"
	"dramhit/internal/latency"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
	"dramhit/internal/ycsb"
)

func main() {
	workloadName := flag.String("workload", "A", "YCSB core workload: A-F")
	backend := flag.String("table", "dramhit", "dramhit | dramhit-p | folklore | resizable | sharded")
	shards := flag.Int("shards", 0, "initial shard count for the sharded backend (power of two; default 4)")
	splitAt := flag.Float64("splitat", 0, "force a live shard split once this fraction of the timed ops has completed (sharded backend, in (0,1))")
	records := flag.Uint64("records", 1_000_000, "rows loaded before the run")
	ops := flag.Int("ops", 2_000_000, "operations in the timed run")
	workers := flag.Int("workers", 4, "concurrent client goroutines")
	missRatio := flag.Float64("missratio", 0, "fraction of reads redirected to guaranteed-absent keys")
	theta := flag.Float64("theta", -1, "zipfian skew of the key stream; negative = workload default")
	combiningFlag := flag.String("combining", "on", "in-window request combining: on | off")
	governorFlag := flag.String("governor", "off", "adaptive pipeline governor (dramhit and dramhit-p backends): off | auto | direct")
	resizeModeFlag := flag.String("resizemode", "incremental", "resizable-table migration mode: incremental | gate")
	jsonPath := flag.String("json", "", "write the run summary (config, Mops, latency percentiles) as JSON to this path")
	metrics := flag.String("metrics", "", "serve observability on this address during the run, e.g. :8090")
	observe := flag.Bool("observe", false, "attach the observability registry to the table even without -metrics")
	introspect := flag.Bool("introspect", false, "arm table-side introspection (hot-key sketch + per-op-class latency stamping); implies -observe")
	latsink := flag.String("latsink", "hist", "latency sink: hist (log-bucketed, zero-alloc, mergeable) | exact (reservoir + exact CDF)")
	layoutFlag := flag.String("layout", "flat", "physical slot layout (dramhit and dramhit-p backends): flat | bucket")
	valueSize := flag.Int("valuesize", 0, "run as a byte-string KV workload with values up to this many bytes (requires -layout bucket); 0 keeps the uint64 workload")
	valueTheta := flag.Float64("valuetheta", 0, "zipf skew of per-write value sizes over [1,valuesize]; 0 = every value exactly -valuesize bytes")
	socketAddr := flag.String("socket", "", "socket client mode: drive a live dramhit-server as a RESP client at this address instead of an in-process table")
	connsFlag := flag.Int("conns", 64, "socket mode: concurrent client TCP connections")
	pipelineFlag := flag.Int("pipeline", 16, "socket mode: max pipelined requests per connection")
	rateFlag := flag.Float64("rate", 0, "socket mode: open-loop target ops/sec across all connections (0 = closed loop)")
	flag.Parse()

	mix, err := ycsb.ByName(*workloadName)
	if err != nil {
		fail(err)
	}
	if *missRatio < 0 || *missRatio > 1 {
		fail(fmt.Errorf("-missratio must be in [0,1], got %v", *missRatio))
	}
	if *theta >= 1 {
		fail(fmt.Errorf("-theta must be negative (default) or in [0,1), got %v", *theta))
	}
	if *socketAddr != "" {
		// Socket client mode: loadgen is the network side of the table —
		// see socket.go. The in-process table flags do not apply.
		if *connsFlag < 1 {
			fail(fmt.Errorf("-conns must be >= 1, got %d", *connsFlag))
		}
		if *pipelineFlag < 1 {
			fail(fmt.Errorf("-pipeline must be >= 1, got %d", *pipelineFlag))
		}
		runSocket(socketRun{
			addr: *socketAddr, mix: mix, records: *records, ops: *ops,
			conns: *connsFlag, pipeline: *pipelineFlag, rate: *rateFlag,
			miss: *missRatio, theta: *theta, valueSize: *valueSize,
			jsonPath: *jsonPath, metrics: *metrics,
		})
		return
	}
	combining, err := dramhit.ParseCombining(*combiningFlag)
	if err != nil {
		fail(err)
	}
	governor, err := dramhit.ParseGovernor(*governorFlag)
	if err != nil {
		fail(err)
	}
	resizeMode, err := dramhit.ParseResizeMode(*resizeModeFlag)
	if err != nil {
		fail(err)
	}
	if *latsink != "hist" && *latsink != "exact" {
		fail(fmt.Errorf("-latsink must be hist or exact, got %q", *latsink))
	}
	if governor != dramhit.GovernorOff && *backend != "dramhit" && *backend != "dramhit-p" {
		fail(fmt.Errorf("-governor applies to the dramhit and dramhit-p backends, not %q", *backend))
	}
	if *shards != 0 && *backend != "sharded" {
		fail(fmt.Errorf("-shards applies to the sharded backend, not %q", *backend))
	}
	if *shards < 0 || *shards&(*shards-1) != 0 {
		fail(fmt.Errorf("-shards must be a power of two, got %d", *shards))
	}
	if *splitAt != 0 && *backend != "sharded" {
		fail(fmt.Errorf("-splitat applies to the sharded backend, not %q", *backend))
	}
	if *splitAt < 0 || *splitAt >= 1 {
		fail(fmt.Errorf("-splitat must be in (0,1), got %v", *splitAt))
	}
	layout, err := dramhit.ParseLayout(*layoutFlag)
	if err != nil {
		fail(err)
	}
	if layout == dramhit.LayoutBucket && *backend != "dramhit" && *backend != "dramhit-p" {
		fail(fmt.Errorf("-layout bucket applies to the dramhit and dramhit-p backends, not %q", *backend))
	}
	if *valueSize < 0 {
		fail(fmt.Errorf("-valuesize must be >= 0, got %d", *valueSize))
	}
	byteMode := *valueSize > 0
	if byteMode && layout != dramhit.LayoutBucket {
		fail(fmt.Errorf("-valuesize requires -layout bucket (variable-length values live in the bucket layout's arena)"))
	}
	if *valueTheta != 0 && !byteMode {
		fail(fmt.Errorf("-valuetheta applies only with -valuesize"))
	}
	if *valueTheta < 0 || *valueTheta >= 1 {
		fail(fmt.Errorf("-valuetheta must be in [0,1), got %v", *valueTheta))
	}

	// reg is the table-attached observability registry (nil unless asked
	// for: observation off must cost nothing); latReg always exists so the
	// histogram latency sink has worker shards to record into.
	var reg *dramhit.Observability
	if *metrics != "" || *observe || *introspect {
		reg = dramhit.NewObservability()
	}
	if *introspect {
		// Arm before any table or handle is created: workers pick up their
		// sketch shard and latency stamping at creation time.
		reg.EnableHotKeys(0)
		reg.EnableOpLatency()
	}
	latReg := reg
	if latReg == nil {
		latReg = obs.NewWith(0, 1)
	}
	if *metrics != "" {
		srv, err := dramhit.ServeObservability(*metrics, reg)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: observability on http://%s/metrics\n", srv.Addr)
	}

	// view is the per-worker synchronous face over whichever backend. In
	// byte mode (-valuesize) the getB/putB closures drive the bucket
	// layout's byte-string API instead of get/put.
	type view struct {
		get  func(k uint64) (uint64, bool)
		put  func(k, v uint64)
		getB func(k []byte) bool
		putB func(k, v []byte)
		fin  func()
	}
	var mkView func(w int) view
	var teardown func()
	// shmap is set for the sharded backend: the split driver and the
	// per-shard summary need the router itself.
	var shmap *dramhit.Sharded

	slots := nextPow2(*records * 2)
	switch *backend {
	case "sharded":
		n := *shards
		if n == 0 {
			n = 4
		}
		t := dramhit.NewSharded(slots, dramhit.WithShards(n))
		if reg != nil {
			t.Observe(reg)
		}
		for _, k := range ycsb.LoadKeys(*records, 1) {
			t.Put(k, 0)
		}
		shmap = t
		mkView = func(int) view {
			return view{get: t.Get, put: func(k, v uint64) { t.Put(k, v) }, fin: func() {}}
		}
	case "dramhit":
		t := dramhit.New(dramhit.Config{Slots: slots, Combining: combining, Governor: governor, Observe: reg, Layout: layout})
		h := t.NewHandle()
		if byteMode {
			loadBytes(func(k, v []byte) { h.PutBytes(k, v) }, *records, *valueSize, *valueTheta)
		} else {
			h.PutBatch(ycsb.LoadKeys(*records, 1), make([]uint64, *records))
		}
		mkView = func(int) view {
			if byteMode {
				// Byte ops are synchronous on a handle; one per worker.
				hw := t.NewHandle()
				return view{
					getB: func(k []byte) bool { _, ok := hw.GetBytes(k); return ok },
					putB: func(k, v []byte) { hw.PutBytes(k, v) },
					fin:  func() {},
				}
			}
			s := t.NewSync()
			return view{get: s.Get, put: func(k, v uint64) { s.Put(k, v) }, fin: func() {}}
		}
	case "folklore":
		t := dramhit.NewFolklore(slots)
		if reg != nil {
			t.Observe(reg)
		}
		for _, k := range ycsb.LoadKeys(*records, 1) {
			t.Put(k, 0)
		}
		mkView = func(int) view {
			return view{get: t.Get, put: func(k, v uint64) { t.Put(k, v) }, fin: func() {}}
		}
	case "resizable":
		t := dramhit.NewResizableMode(slots, resizeMode)
		if reg != nil {
			t.Observe(reg)
		}
		for _, k := range ycsb.LoadKeys(*records, 1) {
			t.Put(k, 0)
		}
		mkView = func(int) view {
			return view{get: t.Get, put: func(k, v uint64) { t.Put(k, v) }, fin: func() {}}
		}
	case "dramhit-p":
		t := dramhit.NewPartitioned(dramhit.PartitionedConfig{
			Slots: slots, Producers: *workers + 1, Consumers: max(1, *workers/2),
			Combining: combining, Governor: governor, Observe: reg, Layout: layout,
		})
		t.Start()
		teardown = t.Close
		w := t.NewWriteHandle()
		if byteMode {
			loadBytes(func(k, v []byte) { w.PutBytes(k, v) }, *records, *valueSize, *valueTheta)
		} else {
			for _, k := range ycsb.LoadKeys(*records, 1) {
				w.Put(k, 0)
			}
		}
		w.Barrier()
		w.Close()
		mkView = func(int) view {
			wh := t.NewWriteHandle()
			rh := t.NewReadHandle()
			if byteMode {
				// Byte ops bypass the delegation rings (synchronous on the
				// engine), so no Flush/Barrier is needed at teardown.
				return view{
					getB: func(k []byte) bool { _, ok := rh.GetBytes(k); return ok },
					putB: func(k, v []byte) { wh.PutBytes(k, v) },
					fin:  func() { wh.Close() },
				}
			}
			return view{
				get: rh.Get,
				put: func(k, v uint64) { wh.Put(k, v) },
				fin: func() { wh.Flush(); wh.Barrier(); wh.Close() },
			}
		}
	default:
		fail(fmt.Errorf("unknown table %q", *backend))
	}

	// Latency sinks: the default histogram sink records into per-worker
	// observability shards (bounded memory, zero-alloc, mergeable, ≤1/32
	// relative error); -latsink exact keeps the reservoir recorder for
	// exact per-worker CDFs.
	useHist := *latsink == "hist"
	recs := make([]*latency.Recorder, *workers)
	hists := make([]*obs.Histogram, *workers)
	opws := make([]*obs.Worker, *workers)
	for i := 0; i < *workers; i++ {
		if useHist {
			w := latReg.Worker(fmt.Sprintf("loadgen-w%d", i))
			hists[i] = &w.Lat
			opws[i] = w
		} else {
			recs[i] = latency.NewRecorder(1 << 18)
		}
	}
	// Per-op-class accounting is client-side (loadgen's own clock), so it
	// costs the table nothing and works on every backend: counts always,
	// per-class latency histograms when the histogram sink is active.
	opCounts := make([][obs.NumOpClasses]uint64, *workers)

	// With -splitat, a driver goroutine watches run progress and forces a
	// live shard split once the requested fraction of the timed ops has
	// completed; the racing workers (and the driver's own reads) finish the
	// migration cooperatively, chunk by chunk, and the install-to-complete
	// wall time is reported as the split latency.
	trackOps := *splitAt > 0
	var opsDone atomic.Int64
	var splitDur time.Duration
	var splitWG sync.WaitGroup
	runDone := make(chan struct{})
	if trackOps {
		loadKeys := ycsb.LoadKeys(*records, 1)
		splitWG.Add(1)
		go func() {
			defer splitWG.Done()
			target := int64(float64(*ops) * *splitAt)
			for opsDone.Load() < target {
				select {
				case <-runDone:
					return
				default:
					runtime.Gosched()
				}
			}
			t0 := time.Now()
			installed := false
			for i := 0; i < len(loadKeys) && !installed; i++ {
				installed = shmap.Split(loadKeys[i])
			}
			for j := 0; shmap.Resharding(); j++ {
				shmap.Get(loadKeys[j%len(loadKeys)])
			}
			splitDur = time.Since(t0)
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	perWorker := *ops / *workers
	for wi := 0; wi < *workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			v := mkView(wi)
			g := ycsb.NewGeneratorMissTheta(mix, *records, int64(wi+1), *missRatio, *theta)
			// exec runs one operation against the view and reports its op
			// class: uint64 values by default, rendered byte keys and sized
			// byte values in byte mode. A read-modify-write counts as one
			// upsert (its latency covers both halves); a scan is classed by
			// its first probe's outcome.
			exec := func(op ycsb.Op, i int) int {
				switch op.Kind {
				case ycsb.Read:
					_, ok := v.get(op.Key)
					return obs.OpClass(table.Get, ok)
				case ycsb.Update, ycsb.Insert:
					v.put(op.Key, uint64(i))
					return obs.OpClass(table.Put, true)
				case ycsb.ReadModifyWrite:
					if old, ok := v.get(op.Key); ok {
						v.put(op.Key, old+1)
					} else {
						v.put(op.Key, 1)
					}
					return obs.OpClass(table.Upsert, true)
				case ycsb.Scan:
					_, first := v.get(op.Key)
					for j := 1; j < op.ScanLen; j++ {
						v.get(op.Key + uint64(j))
					}
					return obs.OpClass(table.Get, first)
				}
				return obs.OpClass(table.Get, false)
			}
			if byteMode {
				g.WithValueSizer(workload.NewValueSizer(int64(wi+1), *valueSize, *valueTheta))
				var kb, vb []byte
				exec = func(op ycsb.Op, i int) int {
					kb = workload.AppendByteKey(kb[:0], op.Key)
					switch op.Kind {
					case ycsb.Read:
						return obs.OpClass(table.Get, v.getB(kb))
					case ycsb.Update, ycsb.Insert:
						vb = workload.FillValue(vb, op.Key, op.ValueSize)
						v.putB(kb, vb)
						return obs.OpClass(table.Put, true)
					case ycsb.ReadModifyWrite:
						v.getB(kb)
						vb = workload.FillValue(vb, op.Key, op.ValueSize)
						v.putB(kb, vb)
						return obs.OpClass(table.Upsert, true)
					case ycsb.Scan:
						first := v.getB(kb)
						for j := 1; j < op.ScanLen; j++ {
							kb = workload.AppendByteKey(kb[:0], op.Key+uint64(j))
							v.getB(kb)
						}
						return obs.OpClass(table.Get, first)
					}
					return obs.OpClass(table.Get, false)
				}
			}
			rec, hist, ow := recs[wi], hists[wi], opws[wi]
			var cnt [obs.NumOpClasses]uint64
			for i := 0; i < perWorker; i++ {
				op := g.Next()
				t0 := time.Now()
				cls := exec(op, i)
				ns := time.Since(t0).Nanoseconds()
				cnt[cls]++
				if hist != nil {
					hist.Record(uint64(ns))
					ow.Op[cls].Record(uint64(ns))
				} else {
					rec.Add(float64(ns))
				}
				if trackOps {
					opsDone.Add(1)
				}
			}
			opCounts[wi] = cnt
			v.fin()
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(runDone)
	splitWG.Wait()
	if teardown != nil {
		teardown()
	}
	if shmap != nil {
		shmap.DrainResharding()
	}

	var total uint64
	var pct bench.Percentiles
	var latHist []obs.HistBucket
	if useHist {
		var merged obs.Histogram
		for _, h := range hists {
			merged.Merge(h)
		}
		total = merged.Count()
		pct = bench.PercentilesFromHistogram(&merged)
		latHist = merged.Buckets()
	} else {
		cdfs := make([]*latency.CDF, len(recs))
		for i, r := range recs {
			total += r.Count()
			cdfs[i] = r.CDF()
		}
		m := latency.Merge(cdfs...)
		pct = bench.Percentiles{
			P50: m.Quantile(0.5), P90: m.Quantile(0.9), P99: m.Quantile(0.99),
			P999: m.Quantile(0.999), Max: m.Quantile(1), Mean: m.Mean(), Count: total,
		}
	}

	// Per-op-class rollup: counts from every worker, latency summaries from
	// the merged per-class histograms (histogram sink only).
	var clsTotals [obs.NumOpClasses]uint64
	for _, c := range opCounts {
		for cls, n := range c {
			clsTotals[cls] += n
		}
	}
	opsByType := map[string]uint64{}
	for cls, n := range clsTotals {
		if n != 0 {
			opsByType[obs.OpClassNames[cls]] = n
		}
	}
	var opLatNS map[string]bench.Percentiles
	if useHist {
		opLatNS = map[string]bench.Percentiles{}
		for cls := 0; cls < obs.NumOpClasses; cls++ {
			var m obs.Histogram
			for _, w := range opws {
				m.Merge(&w.Op[cls])
			}
			if m.Count() != 0 {
				opLatNS[obs.OpClassNames[cls]] = bench.PercentilesFromHistogram(&m)
			}
		}
	}

	missNote := ""
	if *missRatio > 0 {
		missNote = fmt.Sprintf(", miss %.0f%%", *missRatio*100)
	}
	if *theta >= 0 {
		missNote += fmt.Sprintf(", theta %.2f", *theta)
	}
	if combining == dramhit.CombineOff {
		missNote += ", combining off"
	}
	if governor != dramhit.GovernorOff {
		missNote += ", governor " + governor.String()
	}
	if layout == dramhit.LayoutBucket {
		missNote += ", layout bucket"
	}
	if byteMode {
		missNote += fmt.Sprintf(", byte values <=%dB", *valueSize)
		if *valueTheta > 0 {
			missNote += fmt.Sprintf(" (zipf %.2f)", *valueTheta)
		}
	}
	fmt.Printf("ycsb-%s on %s: %d ops, %d workers%s, %v (%.2f Mops)\n",
		mix.Name, *backend, total, *workers, missNote, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	if useHist {
		fmt.Printf("  latency ns (all workers, log-bucketed): p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f mean=%.0f\n",
			pct.P50, pct.P90, pct.P99, pct.P999, pct.Max, pct.Mean)
	} else {
		for wi, r := range recs {
			fmt.Printf("  worker %d latency ns: %s\n", wi, r.CDF().String())
		}
	}
	for cls := 0; cls < obs.NumOpClasses; cls++ {
		name := obs.OpClassNames[cls]
		n := clsTotals[cls]
		if n == 0 {
			continue
		}
		if p, ok := opLatNS[name]; ok {
			fmt.Printf("  %-11s %9d ops  p50=%.0f p99=%.0f p99.9=%.0f mean=%.0f ns\n",
				name, n, p.P50, p.P99, p.P999, p.Mean)
		} else {
			fmt.Printf("  %-11s %9d ops\n", name, n)
		}
	}
	if *introspect {
		if top := reg.TopKeys(8); len(top) > 0 {
			fmt.Printf("  hot keys (count±err):")
			for _, it := range top {
				fmt.Printf(" %#x=%d±%d", it.Key, it.Count, it.Err)
			}
			fmt.Println()
		}
	}
	if shmap != nil {
		st := shmap.Stats()
		fmt.Printf("  shards: %d (depth %d, splits %d, chunks helped %d)\n",
			st.Shards, st.Depth, st.Splits, st.ChunksHelped)
		for _, s := range shmap.ShardStats() {
			fmt.Printf("  shard %d/%d (prefix %0*b): live=%d cap=%d fill=%.3f\n",
				s.ID, s.Bits, max(int(s.Bits), 1), s.Pfx, s.Live, s.Cap, s.Fill)
		}
		if *splitAt > 0 {
			fmt.Printf("  forced split at %.0f%% of the run: %v install-to-complete\n",
				*splitAt*100, splitDur.Round(time.Microsecond))
		}
	}

	if *jsonPath != "" {
		res := bench.RunResult{
			Name:      "loadgen-" + mix.Name + "-" + *backend,
			Table:     *backend,
			Workload:  mix.Name,
			Records:   int(*records),
			Ops:       int(total),
			Workers:   *workers,
			Theta:     *theta,
			MissRatio: *missRatio,
			Combining: combining.String(),
			Seconds:   elapsed.Seconds(),
			Mops:      float64(total) / elapsed.Seconds() / 1e6,
			LatencyNS: &pct,
			// The merged log-bucketed distribution rides along when the
			// histogram sink is active (-latsink hist, the default).
			LatencyHist: latHist,
			OpsByType:   opsByType,
			OpLatencyNS: opLatNS,
		}
		if *introspect {
			res.HotKeys = reg.TopKeys(16)
		}
		if governor != dramhit.GovernorOff {
			res.Governor = governor.String()
		}
		if layout == dramhit.LayoutBucket {
			res.Layout = "bucket"
		}
		if byteMode {
			res.ValueSize = *valueSize
			res.ValueTheta = *valueTheta
		}
		if shmap != nil {
			res.Shards = shmap.Stats().Shards
			res.ShardStats = shmap.ShardStats()
			if *splitAt > 0 {
				res.SplitAt = *splitAt
				res.SplitSeconds = splitDur.Seconds()
			}
		}
		if err := bench.WriteJSONFile(*jsonPath, res); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonPath)
	}
}

// loadBytes runs the byte-mode load phase: every load key in its canonical
// "user<id>" string form with a deterministic, sizer-drawn value — the same
// rank space the uint64 load phase covers, so run-phase streams hit.
func loadBytes(put func(k, v []byte), records uint64, size int, theta float64) {
	sizer := workload.NewValueSizer(1, size, theta)
	var kb, vb []byte
	for _, k := range ycsb.LoadKeys(records, 1) {
		kb = workload.AppendByteKey(kb[:0], k)
		vb = workload.FillValue(vb, k, sizer.Next())
		put(kb, vb)
	}
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
