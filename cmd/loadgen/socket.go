// Socket client mode (-socket): loadgen becomes the network in front of
// the table, driving a live dramhit-server over RESP with -conns concurrent
// connections, -pipeline requests in flight per connection, and optional
// open-loop pacing (-rate ops/sec, latency measured from each request's
// scheduled instant so server queueing lands in the tail).
//
// The YCSB op kinds map onto the wire as: Read → GET, Update/Insert → SET
// (sized -valuesize payloads, default 32 bytes), ReadModifyWrite → INCR on
// a dedicated numeric "ctr<n>" keyspace (the verb requires numeric values,
// which "user<id>" payloads are not), Scan → a point GET of the scan's
// first key (RESP GET has no range form).
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"dramhit/internal/bench"
	"dramhit/internal/obs"
	"dramhit/internal/table"
	"dramhit/internal/workload"
	"dramhit/internal/ycsb"
)

type socketRun struct {
	addr            string
	mix             ycsb.Mix
	records         uint64
	ops             int
	conns, pipeline int
	rate            float64
	miss, theta     float64
	valueSize       int
	jsonPath        string
	metrics         string
}

// sockPoolWorkers caps the metric pool: connections share workers (Record
// is atomic), so a 1024-connection run does not mint 1024 registry entries.
const sockPoolWorkers = 16

func runSocket(cfg socketRun) {
	vsize := cfg.valueSize
	if vsize == 0 {
		vsize = 32
	}
	latReg := obs.NewWith(0, 1)
	if cfg.metrics != "" {
		latReg = obs.New()
		srv, err := obs.Serve(cfg.metrics, latReg)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: observability on http://%s/metrics\n", srv.Addr)
	}
	poolN := cfg.conns
	if poolN > sockPoolWorkers {
		poolN = sockPoolWorkers
	}
	pool := make([]*obs.Worker, poolN)
	for i := range pool {
		pool[i] = latReg.Worker(fmt.Sprintf("loadgen-sock-w%d", i))
	}

	loadConns := cfg.conns
	if loadConns > 16 {
		loadConns = 16
	}
	if err := workload.SocketLoad(cfg.addr, ycsb.LoadKeys(cfg.records, 1), vsize, loadConns, 128); err != nil {
		fail(fmt.Errorf("socket load phase: %w", err))
	}

	perConn := cfg.ops / cfg.conns
	if perConn < 1 {
		perConn = 1
	}
	client := &workload.SocketClient{
		Addr: cfg.addr, Conns: cfg.conns, Pipeline: cfg.pipeline,
		OpsPerConn: perConn, Rate: cfg.rate,
		Record: func(ci int, op table.Op, hit, _ bool, ns uint64) {
			w := pool[ci%len(pool)]
			w.Lat.Record(ns)
			w.Op[obs.OpClass(op, hit)].Record(ns)
		},
		Stream: func(ci int) workload.SocketStream {
			g := ycsb.NewGeneratorMissTheta(cfg.mix, cfg.records, int64(ci+1), cfg.miss, cfg.theta)
			var kb, vb []byte
			return func(i int) workload.SocketOp {
				op := g.Next()
				switch op.Kind {
				case ycsb.Update, ycsb.Insert:
					kb = workload.AppendByteKey(kb[:0], op.Key)
					vb = workload.FillValue(vb, op.Key, vsize)
					return workload.SocketOp{Op: table.Put, Key: kb, Value: vb}
				case ycsb.ReadModifyWrite:
					kb = append(kb[:0], "ctr"...)
					kb = strconv.AppendUint(kb, op.Key%1024, 10)
					return workload.SocketOp{Op: table.Upsert, Key: kb}
				default: // Read and Scan: a point GET
					kb = workload.AppendByteKey(kb[:0], op.Key)
					return workload.SocketOp{Op: table.Get, Key: kb}
				}
			}
		},
	}
	stats, err := client.Run()
	if err != nil {
		fail(err)
	}

	var merged obs.Histogram
	for _, w := range pool {
		merged.Merge(&w.Lat)
	}
	pct := bench.PercentilesFromHistogram(&merged)
	opsByType := map[string]uint64{}
	opLatNS := map[string]bench.Percentiles{}
	for cls := 0; cls < obs.NumOpClasses; cls++ {
		var m obs.Histogram
		for _, w := range pool {
			m.Merge(&w.Op[cls])
		}
		if m.Count() != 0 {
			opsByType[obs.OpClassNames[cls]] = m.Count()
			opLatNS[obs.OpClassNames[cls]] = bench.PercentilesFromHistogram(&m)
		}
	}

	pacing := "closed loop"
	if cfg.rate > 0 {
		pacing = fmt.Sprintf("open loop %.0f ops/s", cfg.rate)
	}
	fmt.Printf("ycsb-%s over socket %s: %d ops, %d conns x %d pipeline, %s, %v (%.2f Mops, %d errors)\n",
		cfg.mix.Name, cfg.addr, stats.Ops, cfg.conns, cfg.pipeline, pacing,
		stats.Elapsed.Round(time.Millisecond),
		float64(stats.Ops)/stats.Elapsed.Seconds()/1e6, stats.Errors)
	fmt.Printf("  latency ns (all conns, log-bucketed): p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f mean=%.0f\n",
		pct.P50, pct.P90, pct.P99, pct.P999, pct.Max, pct.Mean)
	for cls := 0; cls < obs.NumOpClasses; cls++ {
		name := obs.OpClassNames[cls]
		p, ok := opLatNS[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-11s %9d ops  p50=%.0f p99=%.0f p99.9=%.0f mean=%.0f ns\n",
			name, p.Count, p.P50, p.P99, p.P999, p.Mean)
	}

	if cfg.jsonPath != "" {
		res := bench.RunResult{
			Name:        "loadgen-socket-" + cfg.mix.Name,
			Table:       "socket",
			Proto:       "resp",
			Workload:    cfg.mix.Name,
			Records:     int(cfg.records),
			Ops:         int(stats.Ops),
			Workers:     cfg.conns,
			Conns:       cfg.conns,
			Pipeline:    cfg.pipeline,
			TargetRate:  cfg.rate,
			Errors:      stats.Errors,
			Theta:       cfg.theta,
			MissRatio:   cfg.miss,
			ValueSize:   vsize,
			Seconds:     stats.Elapsed.Seconds(),
			Mops:        float64(stats.Ops) / stats.Elapsed.Seconds() / 1e6,
			LatencyNS:   &pct,
			LatencyHist: merged.Buckets(),
			OpsByType:   opsByType,
			OpLatencyNS: opLatNS,
		}
		if err := bench.WriteJSONFile(cfg.jsonPath, res); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", cfg.jsonPath)
	}
}
