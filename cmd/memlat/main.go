// Command memlat is the repository's stand-in for the Intel Memory Latency
// Checker: it measures the simulated machine's bandwidth and per-transaction
// cycle budget for the access mixes of the paper's Table 1, plus raw
// latencies of each level of the hierarchy.
package main

import (
	"flag"
	"fmt"
	"os"

	"dramhit/internal/bench"
	"dramhit/internal/memsim"
)

func main() {
	machine := flag.String("machine", "intel", "machine model: intel | amd")
	flag.Parse()

	var m *memsim.Machine
	switch *machine {
	case "intel":
		m = memsim.IntelSkylake()
	case "amd":
		m = memsim.AMDMilan()
	default:
		fmt.Fprintln(os.Stderr, "memlat: -machine must be intel or amd")
		os.Exit(2)
	}

	fmt.Printf("machine: %s (%d sockets x %d cores x %d threads @ %.1f GHz)\n",
		m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.FreqGHz)
	fmt.Printf("memory:  %d channels/socket @ %d MT/s -> %.1f GB/s theoretical per socket\n",
		m.ChannelsPerSocket, m.MTPerSec, m.TheoreticalGBs())
	fmt.Printf("         %.2f cycles per line per channel\n\n", m.CyclesPerLine())

	fmt.Println("load-to-use latencies (cycles):")
	fmt.Printf("  L1 %d, L2 %d, L3 %d, local cache transfer %d, remote cache %d, DRAM %d, remote DRAM %d\n\n",
		m.L1Lat, m.L2Lat, m.L3Lat, m.LocalCacheLat, m.RemoteCacheLat, m.DRAMLat, m.RemoteDRAMLat)

	if *machine == "intel" {
		r, _ := bench.Get("table1")
		fmt.Print(bench.Format(r(bench.Config{Seed: 1})))
	} else {
		fmt.Println("(Table 1 is defined for the Intel configuration; AMD numbers: ~167 GB/s random reads, ~144 GB/s 1:1 r/w per the paper)")
	}
}
