// wordfreq: concurrent word-frequency aggregation comparing the three
// tables on the same workload — a compact tour of when each design wins.
//
// It hashes words from a synthetic corpus with a skewed (natural-language
// like) distribution and counts them with: the Folklore baseline
// (synchronous, one CAS per new word), DRAMHiT (batched upserts through the
// prefetch pipeline), and DRAMHiT-P (delegated counting). All three must
// produce identical counts; their relative timings on this host illustrate
// the designs' trade-offs (absolute numbers depend on cores available —
// the paper's evaluation is reproduced by cmd/dramhit-bench instead).
//
// Run with: go run ./examples/wordfreq
package main

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"dramhit"
)

const (
	vocab    = 50_000
	words    = 600_000
	counters = 3
	slots    = 1 << 18
)

// corpus generates word indices with a zipf-ish distribution and hashes
// them the way an application would hash strings.
func corpus(seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, vocab-1)
	out := make([]uint64, words/counters)
	h := fnv.New64a()
	for i := range out {
		h.Reset()
		fmt.Fprintf(h, "word-%d", z.Uint64())
		out[i] = h.Sum64()
	}
	return out
}

func main() {
	streams := make([][]uint64, counters)
	for i := range streams {
		streams[i] = corpus(int64(i + 1))
	}

	time3 := func(name string, run func() (get func(uint64) (uint64, bool))) func(uint64) (uint64, bool) {
		start := time.Now()
		get := run()
		fmt.Printf("%-10s %8v\n", name, time.Since(start).Round(time.Millisecond))
		return get
	}

	// Folklore: synchronous upserts.
	folkGet := time3("folklore", func() func(uint64) (uint64, bool) {
		t := dramhit.NewFolklore(slots)
		var wg sync.WaitGroup
		for w := 0; w < counters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, word := range streams[w] {
					t.Upsert(word, 1)
				}
			}(w)
		}
		wg.Wait()
		return t.Get
	})

	// DRAMHiT: batched pipeline upserts.
	dhGet := time3("dramhit", func() func(uint64) (uint64, bool) {
		t := dramhit.New(dramhit.Config{Slots: slots})
		var wg sync.WaitGroup
		for w := 0; w < counters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := t.NewHandle()
				h.UpsertBatch(streams[w], 1)
			}(w)
		}
		wg.Wait()
		s := t.NewSync()
		return s.Get
	})

	// DRAMHiT-P: delegated counting.
	dpGet := time3("dramhit-p", func() func(uint64) (uint64, bool) {
		t := dramhit.NewPartitioned(dramhit.PartitionedConfig{
			Slots: slots, Producers: counters, Consumers: 2,
		})
		t.Start()
		var wg sync.WaitGroup
		for w := 0; w < counters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wh := t.NewWriteHandle()
				defer wh.Close()
				for _, word := range streams[w] {
					wh.Upsert(word, 1)
				}
				wh.Barrier()
			}(w)
		}
		wg.Wait()
		r := t.NewReadHandle()
		// Leave the table running until main exits; counts are settled.
		return r.Get
	})

	// Cross-check all three against a reference map.
	ref := map[uint64]uint64{}
	for _, s := range streams {
		for _, w := range s {
			ref[w]++
		}
	}
	checked := 0
	for w, want := range ref {
		for name, get := range map[string]func(uint64) (uint64, bool){
			"folklore": folkGet, "dramhit": dhGet, "dramhit-p": dpGet,
		} {
			if got, ok := get(w); !ok || got != want {
				panic(fmt.Sprintf("%s: count(%x) = %d, want %d", name, w, got, want))
			}
		}
		checked++
		if checked == 20_000 {
			break
		}
	}
	fmt.Printf("all three tables agree on %d word counts (%d distinct words)\n", checked, len(ref))
}
