// kvcache: a read-heavy key-value cache in front of a slow backing store —
// the "request load balancing / key-value store" workload class from the
// paper's introduction.
//
// Several worker goroutines serve zipfian-skewed lookups, each with its own
// DRAMHiT handle, batching requests so the prefetch pipeline overlaps the
// misses; cache misses fall through to the (simulated) backing store and are
// installed with Put. Reads take no atomic operations, so the hot keys stay
// cached in the shared state across all cores.
//
// Run with: go run ./examples/kvcache
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dramhit"
)

const (
	cacheSlots = 1 << 20
	keySpace   = 200_000
	workers    = 4
	requests   = 100_000
	batchSize  = 64
)

// backingStore stands in for the slow tier (a database, a remote service).
func backingStore(key uint64) uint64 { return key*31 + 7 }

func main() {
	cache := dramhit.New(dramhit.Config{Slots: cacheSlots})

	var hits, misses atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := cache.NewHandle()
			// Zipf-skewed request stream: most traffic hammers few keys.
			rng := rand.New(rand.NewSource(int64(w + 1)))
			zipf := rand.NewZipf(rng, 1.2, 1, keySpace-1)

			reqs := make([]dramhit.Request, 0, batchSize)
			resps := make([]dramhit.Response, batchSize*2)
			keys := make([]uint64, batchSize) // ID -> key for miss handling

			serveBatch := func() {
				if len(reqs) == 0 {
					return
				}
				pending := reqs
				collect := func(rs []dramhit.Response) {
					for _, r := range rs {
						if r.Found {
							hits.Add(1)
							continue
						}
						// Miss: fetch from the slow tier, install.
						misses.Add(1)
						k := keys[r.ID]
						v := backingStore(k)
						h.Submit([]dramhit.Request{{Op: dramhit.Put, Key: k, Value: v}}, nil)
					}
				}
				for len(pending) > 0 {
					nreq, nresp := h.Submit(pending, resps)
					collect(resps[:nresp])
					pending = pending[nreq:]
				}
				for {
					nresp, done := h.Flush(resps)
					collect(resps[:nresp])
					if done {
						break
					}
				}
				reqs = reqs[:0]
			}

			for i := 0; i < requests/workers; i++ {
				key := zipf.Uint64() + 1
				id := uint64(len(reqs))
				keys[id] = key
				reqs = append(reqs, dramhit.Request{Op: dramhit.Get, Key: key, ID: id})
				if len(reqs) == batchSize {
					serveBatch()
				}
			}
			serveBatch()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := hits.Load() + misses.Load()
	fmt.Printf("kvcache: %d requests from %d workers in %v (%.2f Mops)\n",
		total, workers, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("hit rate %.1f%% (%d hits, %d misses), %d distinct keys cached\n",
		100*float64(hits.Load())/float64(total), hits.Load(), misses.Load(), cache.Len())

	// Spot-check correctness through a synchronous view.
	s := cache.NewSync()
	for k := uint64(1); k <= 5; k++ {
		if v, ok := s.Get(k); ok && v != backingStore(k) {
			panic(fmt.Sprintf("cache corruption: key %d has %d", k, v))
		}
	}
	fmt.Println("spot check passed")
}
