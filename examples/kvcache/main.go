// kvcache: a read-heavy key-value cache in front of a slow backing store —
// the "request load balancing / key-value store" workload class from the
// paper's introduction — served over the network by dramhit-server.
//
// The cache loop itself lives in the server now (cmd/dramhit-server parses
// wire batches into the table's prefetch pipeline); this example is the thin
// client side: workers speak plain RESP over TCP, pipelining zipfian GETs so
// the server sees wire batches it can drain under one prefetch window, and
// on a miss fetch from the (simulated) slow tier and install the value with
// a pipelined SET. Any Redis client would do the same job.
//
// Run with: go run ./examples/kvcache
// Or point it at an external server: go run ./cmd/dramhit-server -resp :6380
// in one terminal, go run ./examples/kvcache -addr 127.0.0.1:6380 in another.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dramhit/internal/kvserver"
)

const (
	cacheSlots = 1 << 20
	keySpace   = 200_000
	workers    = 4
	requests   = 100_000
	batchSize  = 64 // pipelined GETs per wire batch
)

// backingStore stands in for the slow tier (a database, a remote service).
func backingStore(key uint64) uint64 { return key*31 + 7 }

// client is one worker's connection: pipelined RESP over a buffered pair.
type client struct {
	nc net.Conn
	br *bufio.Reader
	wb []byte
}

func dial(addr string) (*client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{nc: nc, br: bufio.NewReaderSize(nc, 1<<16)}, nil
}

func (c *client) appendCmd(args ...[]byte) {
	c.wb = append(c.wb, '*')
	c.wb = strconv.AppendInt(c.wb, int64(len(args)), 10)
	c.wb = append(c.wb, '\r', '\n')
	for _, a := range args {
		c.wb = append(c.wb, '$')
		c.wb = strconv.AppendInt(c.wb, int64(len(a)), 10)
		c.wb = append(c.wb, '\r', '\n')
		c.wb = append(c.wb, a...)
		c.wb = append(c.wb, '\r', '\n')
	}
}

// flush writes the pipelined batch and returns one reply per command: the
// bulk payload for a GET hit, nil for a nil reply (miss), the line tail for
// simple-string and integer replies.
func (c *client) flush(n int) ([][]byte, error) {
	if _, err := c.nc.Write(c.wb); err != nil {
		return nil, err
	}
	c.wb = c.wb[:0]
	replies := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.br.ReadSlice('\n')
		if err != nil {
			return nil, err
		}
		switch line[0] {
		case '+', ':':
			replies = append(replies, []byte(string(line[1:len(line)-2])))
		case '-':
			return nil, fmt.Errorf("server error: %s", line[1:len(line)-2])
		case '$':
			sz, _ := strconv.Atoi(string(line[1 : len(line)-2]))
			if sz < 0 {
				replies = append(replies, nil) // miss
				continue
			}
			body := make([]byte, sz+2)
			if _, err := io.ReadFull(c.br, body); err != nil {
				return nil, err
			}
			replies = append(replies, body[:sz])
		default:
			return nil, fmt.Errorf("unexpected reply %q", line)
		}
	}
	return replies, nil
}

func main() {
	addr := flag.String("addr", "", "dramhit-server RESP address (empty boots one in-process)")
	flag.Parse()

	if *addr == "" {
		srv, err := kvserver.New(kvserver.Config{RespAddr: "127.0.0.1:0", Slots: cacheSlots})
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		*addr = srv.RespAddr()
		fmt.Printf("kvcache: in-process dramhit-server on %s\n", *addr)
	}

	var hits, misses atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := dial(*addr)
			if err != nil {
				panic(err)
			}
			defer c.nc.Close()
			// Zipf-skewed request stream: most traffic hammers few keys.
			rng := rand.New(rand.NewSource(int64(w + 1)))
			zipf := rand.NewZipf(rng, 1.2, 1, keySpace-1)

			keys := make([]uint64, 0, batchSize)
			var kb, vb []byte
			for sent := 0; sent < requests/workers; {
				keys = keys[:0]
				for len(keys) < batchSize && sent+len(keys) < requests/workers {
					keys = append(keys, zipf.Uint64()+1)
				}
				for _, k := range keys {
					kb = strconv.AppendUint(kb[:0], k, 10)
					c.appendCmd([]byte("GET"), kb)
				}
				replies, err := c.flush(len(keys))
				if err != nil {
					panic(err)
				}
				// Misses fall through to the slow tier and install with SET.
				nmiss := 0
				for i, r := range replies {
					if r != nil {
						hits.Add(1)
						continue
					}
					misses.Add(1)
					k := keys[i]
					kb = strconv.AppendUint(kb[:0], k, 10)
					vb = strconv.AppendUint(vb[:0], backingStore(k), 10)
					c.appendCmd([]byte("SET"), kb, vb)
					nmiss++
				}
				if nmiss > 0 {
					if _, err := c.flush(nmiss); err != nil {
						panic(err)
					}
				}
				sent += len(keys)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := hits.Load() + misses.Load()
	fmt.Printf("kvcache: %d requests from %d workers in %v (%.2f Mops)\n",
		total, workers, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("hit rate %.1f%% (%d hits, %d misses)\n",
		100*float64(hits.Load())/float64(total), hits.Load(), misses.Load())

	// Spot-check correctness through a fresh connection.
	c, err := dial(*addr)
	if err != nil {
		panic(err)
	}
	defer c.nc.Close()
	for k := uint64(1); k <= 5; k++ {
		c.appendCmd([]byte("GET"), []byte(strconv.FormatUint(k, 10)))
		replies, err := c.flush(1)
		if err != nil {
			panic(err)
		}
		if r := replies[0]; r != nil && string(r) != strconv.FormatUint(backingStore(k), 10) {
			panic(fmt.Sprintf("cache corruption: key %d has %q", k, r))
		}
	}
	fmt.Println("spot check passed")
}
