// kmercount: the paper's genomics macrobenchmark (§4.6) as an example of
// DRAMHiT-P's delegated counting pipeline.
//
// K-mer counting is upsert-only and highly skewed (repeats concentrate half
// the dataset on a couple dozen k-mers), which is exactly the workload class
// where shared-memory CAS storms collapse and delegation wins: writer
// goroutines stream fire-and-forget upserts to partition owners, each the
// single writer of its share of the key space.
//
// Run with: go run ./examples/kmercount
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dramhit"
)

const (
	k       = 16
	writers = 3
	slots   = 1 << 20
)

// encodeKmers converts a DNA sequence into 2-bit-packed k-mers with a
// rolling window (self-contained here; the internal kmer package provides a
// production version with FASTA parsing and N handling).
func encodeKmers(seq []byte, k int, emit func(uint64)) {
	var cur uint64
	mask := uint64(1)<<(2*k) - 1
	have := 0
	code := map[byte]uint64{'A': 0, 'C': 1, 'G': 2, 'T': 3}
	for _, b := range seq {
		cur = (cur<<2 | code[b]) & mask
		if have < k {
			have++
		}
		if have == k {
			emit(cur)
		}
	}
}

// syntheticChromosome interleaves tandem repeats (hot k-mers) with random
// background, like real genomes.
func syntheticChromosome(seed int64, bases int) []byte {
	rng := rand.New(rand.NewSource(seed))
	const alphabet = "ACGT"
	motif := []byte("ACGTAC") // tandem repeat seed
	out := make([]byte, 0, bases)
	for len(out) < bases {
		if rng.Float64() < 0.5 {
			for i := 0; i < 60; i++ {
				out = append(out, motif[i%len(motif)])
			}
		} else {
			for i := 0; i < 40; i++ {
				out = append(out, alphabet[rng.Intn(4)])
			}
		}
	}
	return out[:bases]
}

func main() {
	table := dramhit.NewPartitioned(dramhit.PartitionedConfig{
		Slots:     slots,
		Producers: writers,
		Consumers: 2, // delegation threads owning the partitions
	})
	table.Start()
	defer table.Close()

	chromosomes := make([][]byte, writers)
	total := 0
	for i := range chromosomes {
		chromosomes[i] = syntheticChromosome(int64(i+1), 400_000)
		total += len(chromosomes[i]) - k + 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wh := table.NewWriteHandle()
			defer wh.Close()
			encodeKmers(chromosomes[w], k, func(km uint64) {
				wh.Upsert(km, 1) // fire-and-forget, delegated to the owner
			})
			wh.Flush()
			wh.Barrier() // wait until the owners applied everything
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("kmercount: %d k-mers (k=%d) from %d writers in %v (%.2f Mops)\n",
		total, k, writers, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("distinct k-mers stored: %d, dropped (partition full): %d\n",
		table.Len(), table.Dropped())

	// Verify against a plain map.
	ref := map[uint64]uint64{}
	for _, c := range chromosomes {
		encodeKmers(c, k, func(km uint64) { ref[km]++ })
	}
	r := table.NewReadHandle()
	checked := 0
	for km, want := range ref {
		if got, ok := r.Get(km); !ok || got != want {
			panic(fmt.Sprintf("count mismatch for %x: got (%d,%v) want %d", km, got, ok, want))
		}
		checked++
		if checked == 50_000 {
			break
		}
	}
	fmt.Printf("verified %d counts against a reference map\n", checked)
}
