// Quickstart: the batched asynchronous interface of DRAMHiT.
//
// The table never touches unprefetched memory: a handle accumulates
// requests in its prefetch window and completes them out of order. This
// example walks through submissions, out-of-order response matching by ID,
// upserts, deletes, and the flush at the end of a dataset.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dramhit"
)

func main() {
	// A table with 1M slots (16 MB of key/value pairs). Handles are
	// per-goroutine; any number of handles may work concurrently.
	t := dramhit.New(dramhit.Config{Slots: 1 << 20})
	h := t.NewHandle()

	// --- Convenience batch helpers -------------------------------------
	keys := make([]uint64, 1000)
	vals := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i) * 2654435761 // any 64-bit keys, 0 and ^0 included
		vals[i] = uint64(i) * 10
	}
	h.PutBatch(keys, vals)

	got := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	h.GetBatch(keys, got, found)
	fmt.Printf("quickstart: inserted and read back %d keys; key[7] -> %d (found=%v)\n",
		t.Len(), got[7], found[7])

	// --- The raw asynchronous interface ---------------------------------
	// Submit takes a batch of requests and writes completed responses into
	// a caller-provided buffer. Responses can arrive out of order; the ID
	// field ties them back to their request.
	reqs := []dramhit.Request{
		{Op: dramhit.Get, Key: keys[3], ID: 300},
		{Op: dramhit.Upsert, Key: 424242, Value: 5}, // new key: insert 5
		{Op: dramhit.Upsert, Key: 424242, Value: 5}, // existing: add 5
		{Op: dramhit.Get, Key: 424242, ID: 301},
		{Op: dramhit.Delete, Key: keys[4]},
		{Op: dramhit.Get, Key: keys[4], ID: 302},
	}
	resps := make([]dramhit.Response, len(reqs))
	n := 0
	for len(reqs) > 0 {
		nreq, nresp := h.Submit(reqs, resps[n:])
		reqs = reqs[nreq:]
		n += nresp
	}
	// The pipeline holds the last window's worth of requests until enough
	// have accumulated — flush at the end of the dataset.
	for {
		nresp, done := h.Flush(resps[n:])
		n += nresp
		if done {
			break
		}
	}
	for _, r := range resps[:n] {
		fmt.Printf("  response id=%d value=%d found=%v\n", r.ID, r.Value, r.Found)
	}

	st := h.Stats()
	fmt.Printf("handle stats: %d ops, %.2f cache lines per op (the paper reports ~1.3 at 75%% fill)\n",
		st.Ops(), float64(st.Lines)/float64(st.Ops()))
}
