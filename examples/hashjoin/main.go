// hashjoin: a main-memory equi-join (the database workload from the
// paper's introduction — DeWitt & Gerber through Balkesen et al.) built on
// DRAMHiT's batched interface.
//
// orders ⋈ customers on customer_id: the build phase inserts the customers
// (primary key side) through the insert pipeline; the probe phase streams
// the orders through batched lookups, so the random access per probe — a
// hash join's whole cost — is prefetched off the critical path.
//
// Run with: go run ./examples/hashjoin
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dramhit"
)

const (
	customers = 300_000
	orders    = 1_500_000
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Build relation: customer_id -> region (payload packed in the value).
	custIDs := make([]uint64, customers)
	regions := make([]uint64, customers)
	for i := range custIDs {
		custIDs[i] = uint64(i)*2654435761 + 1
		regions[i] = uint64(rng.Intn(50))
	}

	// Probe relation: orders referencing random customers; 10% dangling
	// (customer deleted — no match).
	orderCust := make([]uint64, orders)
	for i := range orderCust {
		if rng.Intn(10) == 0 {
			orderCust[i] = rng.Uint64() | 1<<63 // dangling FK
		} else {
			orderCust[i] = custIDs[rng.Intn(customers)]
		}
	}

	// Build.
	t := dramhit.New(dramhit.Config{Slots: customers * 2})
	h := t.NewHandle()
	start := time.Now()
	h.PutBatch(custIDs, regions)
	buildTime := time.Since(start)

	// Probe with batched lookups; aggregate order counts per region (a
	// GROUP BY on the joined result).
	perRegion := make([]int, 50)
	reqs := make([]dramhit.Request, 0, 64)
	resps := make([]dramhit.Response, 256)
	matches := 0
	collect := func(rs []dramhit.Response) {
		for _, r := range rs {
			if r.Found {
				matches++
				perRegion[r.Value]++
			}
		}
	}
	start = time.Now()
	flush := func() {
		rem := reqs
		for len(rem) > 0 {
			nreq, nresp := h.Submit(rem, resps)
			collect(resps[:nresp])
			rem = rem[nreq:]
		}
		reqs = reqs[:0]
	}
	for i, c := range orderCust {
		reqs = append(reqs, dramhit.Request{Op: dramhit.Get, Key: c, ID: uint64(i)})
		if len(reqs) == cap(reqs) {
			flush()
		}
	}
	flush()
	for {
		nresp, done := h.Flush(resps)
		collect(resps[:nresp])
		if done {
			break
		}
	}
	probeTime := time.Since(start)

	fmt.Printf("hashjoin: built %d customers in %v, probed %d orders in %v (%.1f Mprobes/s)\n",
		customers, buildTime.Round(time.Millisecond),
		orders, probeTime.Round(time.Millisecond),
		float64(orders)/probeTime.Seconds()/1e6)
	fmt.Printf("matched %d orders (%.1f%% selectivity)\n",
		matches, 100*float64(matches)/float64(orders))
	top, topN := 0, 0
	for r, n := range perRegion {
		if n > topN {
			top, topN = r, n
		}
	}
	fmt.Printf("busiest region: %d with %d orders\n", top, topN)
}
