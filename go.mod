module dramhit

go 1.22
